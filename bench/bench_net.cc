// TCP front-end load generator: drives an in-process net::Server over real
// loopback sockets with the blocking net::Client and reports
//   1. ping_pong: closed-loop round-trip latency on one connection over a
//      warm cache (p50/p95/p99 us) — the pure transport+framing overhead
//      on top of a served hit.
//   2. open_loop: C connections, each with a sender thread following a
//      seeded open-loop arrival schedule (exponential gaps at a fixed
//      target rate; a late sender sends immediately but latency is
//      measured from the *scheduled* arrival, so queueing delay is not
//      omitted) and a receiver thread recording per-response latency into
//      util::Summary. Reports achieved QPS and the latency histogram.
//   3. wire: a seeded hostile sweep — well-framed garbage payloads
//      interleaved with valid requests on one connection; every garbage
//      frame must come back as an in-band kCodecError and every valid
//      request must still succeed, all counted.
//
// The request/response counts (requests_sent, responses_ok,
// malformed_rejects, and the server's own frames_in/responses_out) are
// machine-independent: the same on every box, so bench/baselines/
// bench_net.json gates them strictly under OSUM_PERF_LANE while the
// timing rows stay report-only. The bench FAILS (exit 1) if any response
// goes missing, any valid request fails, or any garbage frame is not
// rejected — it is an end-to-end acceptance harness as much as a bench.
//
// Flags: --json <path> (bench::JsonReport rows), --tiny (CI smoke sizes).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/codec.h"
#include "api/query.h"
#include "bench_common.h"
#include "core/os_backend.h"
#include "net/client.h"
#include "net/server.h"
#include "search/engine.h"
#include "serve/query_service.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// A small warm query mix: distinct keywords with real results, all
/// pre-warmed through the wire so every measured request is a cache hit —
/// the bench measures the serving path, not OS generation.
std::vector<api::QueryRequest> WarmMix() {
  std::vector<api::QueryRequest> mix;
  for (const char* q : {"faloutsos", "databases", "mining", "graphs"}) {
    mix.push_back(api::QueryRequest(q).WithL(12).WithMaxResults(4));
  }
  return mix;
}

struct PingPongResult {
  util::Summary rtt_us;
  uint64_t sent = 0;
  uint64_t ok = 0;
};

PingPongResult RunPingPong(uint16_t port,
                           const std::vector<api::QueryRequest>& mix,
                           size_t rounds) {
  PingPongResult result;
  api::StatusOr<net::Client> client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "ping_pong connect: %s\n",
                 client.status().ToString().c_str());
    return result;
  }
  for (size_t i = 0; i < rounds; ++i) {
    const api::QueryRequest& request = mix[i % mix.size()];
    Clock::time_point start = Clock::now();
    if (!client->Send(request).ok()) break;
    ++result.sent;
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok() || !response->ok()) break;
    ++result.ok;
    if (i >= mix.size()) {  // first pass over the mix is cache warmup
      result.rtt_us.Add(SecondsSince(start) * 1e6);
    }
  }
  return result;
}

struct OpenLoopResult {
  util::Summary latency_us;
  uint64_t sent = 0;
  uint64_t ok = 0;
  double wall_s = 0;
};

/// One open-loop connection: precomputed arrival offsets, a sender that
/// follows them, a receiver that timestamps responses. Results come back
/// in request order (server guarantee), so response i pairs with
/// schedule[i] with no correlation id on the wire.
void RunConnection(uint16_t port, const std::vector<api::QueryRequest>& mix,
                   const std::vector<double>& schedule_s,
                   Clock::time_point epoch, OpenLoopResult* out,
                   std::mutex* out_mu) {
  api::StatusOr<net::Client> client =
      net::Client::Connect("127.0.0.1", port, /*timeout_ms=*/120'000);
  if (!client.ok()) {
    std::fprintf(stderr, "open_loop connect: %s\n",
                 client.status().ToString().c_str());
    return;
  }
  uint64_t sent = 0;
  std::thread sender([&] {
    for (size_t i = 0; i < schedule_s.size(); ++i) {
      double now = SecondsSince(epoch);
      if (now < schedule_s[i]) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(schedule_s[i] - now));
      }
      if (!client->Send(mix[i % mix.size()]).ok()) return;
      ++sent;
    }
  });
  std::vector<double> latencies;
  latencies.reserve(schedule_s.size());
  uint64_t ok = 0;
  for (size_t i = 0; i < schedule_s.size(); ++i) {
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok()) break;
    if (response->ok()) ++ok;
    latencies.push_back((SecondsSince(epoch) - schedule_s[i]) * 1e6);
  }
  sender.join();
  std::lock_guard<std::mutex> lock(*out_mu);
  for (double v : latencies) out->latency_us.Add(v);
  out->sent += sent;
  out->ok += ok;
}

OpenLoopResult RunOpenLoop(uint16_t port,
                           const std::vector<api::QueryRequest>& mix,
                           size_t connections, size_t requests_per_connection,
                           double target_qps_per_connection) {
  // Seeded exponential inter-arrival gaps: the schedule (and therefore the
  // request counts) is identical on every machine; only the timings vary.
  std::vector<std::vector<double>> schedules(connections);
  util::Rng rng(0x5E4FCADEull);
  for (size_t c = 0; c < connections; ++c) {
    double t = 0;
    schedules[c].reserve(requests_per_connection);
    for (size_t i = 0; i < requests_per_connection; ++i) {
      double u = (static_cast<double>(rng.NextU64(1'000'000'000)) + 1.0) /
                 1'000'000'001.0;
      t += -std::log(u) / target_qps_per_connection;
      schedules[c].push_back(t);
    }
  }

  OpenLoopResult result;
  std::mutex result_mu;
  Clock::time_point epoch = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back(RunConnection, port, std::cref(mix),
                         std::cref(schedules[c]), epoch, &result, &result_mu);
  }
  for (std::thread& t : threads) t.join();
  result.wall_s = SecondsSince(epoch);
  return result;
}

struct WireResult {
  uint64_t garbage_sent = 0;
  uint64_t malformed_rejects = 0;
  uint64_t valid_sent = 0;
  uint64_t valid_ok = 0;
};

/// Seeded hostile sweep through the framing layer: every 3rd frame is
/// well-framed garbage (random bytes, random length 0..96), the rest are
/// valid requests. The stream must stay in sync: garbage answered in-band
/// with kCodecError, valid requests still served.
WireResult RunWireSweep(uint16_t port,
                        const std::vector<api::QueryRequest>& mix,
                        size_t frames) {
  WireResult result;
  api::StatusOr<net::Client> client = net::Client::Connect("127.0.0.1", port);
  if (!client.ok()) {
    std::fprintf(stderr, "wire connect: %s\n",
                 client.status().ToString().c_str());
    return result;
  }
  util::Rng rng(0xBADF8A3E5ull);
  std::vector<bool> is_garbage;
  is_garbage.reserve(frames);
  for (size_t i = 0; i < frames; ++i) {
    bool garbage = (i % 3) == 2;
    is_garbage.push_back(garbage);
    if (garbage) {
      std::string payload(rng.NextU64(97), '\0');
      for (char& ch : payload) {
        ch = static_cast<char>(rng.NextU64(256));
      }
      if (!client->SendPayload(payload).ok()) return result;
      ++result.garbage_sent;
    } else {
      if (!client->Send(mix[i % mix.size()]).ok()) return result;
      ++result.valid_sent;
    }
  }
  for (size_t i = 0; i < frames; ++i) {
    api::StatusOr<api::QueryResponse> response = client->Receive();
    if (!response.ok()) {
      std::fprintf(stderr, "wire receive %zu: %s\n", i,
                   response.status().ToString().c_str());
      return result;
    }
    if (is_garbage[i]) {
      if (response->status.code() == api::StatusCode::kCodecError) {
        ++result.malformed_rejects;
      }
    } else if (response->ok()) {
      ++result.valid_ok;
    }
  }
  return result;
}

}  // namespace
}  // namespace osum

int main(int argc, char** argv) {
  using namespace osum;
  bench::JsonReport json =
      bench::JsonReport::FromArgs(argc, argv, "bench_net");
  bool tiny = bench::TinyFromArgs(argc, argv);

  datasets::DblpConfig config;
  config.num_authors = tiny ? 100 : 500;
  config.num_papers = tiny ? 400 : 2000;
  config.num_conferences = tiny ? 8 : 15;
  datasets::Dblp d = datasets::BuildDblp(config);
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);
  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  search::SearchContext ctx =
      search::SearchContext::Build(d.db, &backend, std::move(subjects));

  serve::ServiceOptions service_options;
  service_options.num_threads = 4;
  serve::QueryService service(ctx, service_options);
  net::Server server(&service);  // port 0: the OS picks a free port
  if (api::Status status = server.Start(); !status.ok()) {
    std::fprintf(stderr, "server start: %s\n", status.ToString().c_str());
    return 1;
  }

  std::vector<api::QueryRequest> mix = WarmMix();
  const size_t ping_rounds = tiny ? 64 : 1000;
  const size_t connections = tiny ? 2 : 4;
  const size_t per_connection = tiny ? 100 : 1500;
  const double rate_per_connection = tiny ? 1000.0 : 2500.0;
  const size_t wire_frames = tiny ? 48 : 600;

  // 1. Closed-loop RTT (also warms the cache on its first pass).
  PingPongResult ping = RunPingPong(server.port(), mix, ping_rounds);
  util::PrintHeading(std::cout, "ping_pong (1 connection, " +
                                    std::to_string(ping_rounds) +
                                    " closed-loop round trips, warm cache)");
  util::TablePrinter ping_table({"metric", "value"});
  ping_table.AddRow({"rtt p50 us",
                     util::FormatDouble(ping.rtt_us.Percentile(50.0), 1)});
  ping_table.AddRow({"rtt p95 us",
                     util::FormatDouble(ping.rtt_us.Percentile(95.0), 1)});
  ping_table.AddRow({"rtt p99 us",
                     util::FormatDouble(ping.rtt_us.Percentile(99.0), 1)});
  ping_table.Print(std::cout);
  json.Add("ping_pong", "rtt", "p50_us", ping.rtt_us.Percentile(50.0));
  json.Add("ping_pong", "rtt", "p99_us", ping.rtt_us.Percentile(99.0));
  json.Add("ping_pong", "count", "requests_sent",
           static_cast<double>(ping.sent));
  json.Add("ping_pong", "count", "responses_ok",
           static_cast<double>(ping.ok));

  // 2. Open-loop multi-connection load.
  OpenLoopResult open = RunOpenLoop(server.port(), mix, connections,
                                    per_connection, rate_per_connection);
  double achieved_qps =
      static_cast<double>(open.ok) / std::max(open.wall_s, 1e-9);
  util::PrintHeading(
      std::cout,
      "open_loop (" + std::to_string(connections) + " connections x " +
          std::to_string(per_connection) + " requests, offered " +
          util::FormatDouble(rate_per_connection * connections, 0) + " qps)");
  util::TablePrinter open_table({"metric", "value"});
  open_table.AddRow({"achieved qps", util::FormatDouble(achieved_qps, 0)});
  open_table.AddRow({"latency p50 us",
                     util::FormatDouble(open.latency_us.Percentile(50.0), 1)});
  open_table.AddRow({"latency p95 us",
                     util::FormatDouble(open.latency_us.Percentile(95.0), 1)});
  open_table.AddRow({"latency p99 us",
                     util::FormatDouble(open.latency_us.Percentile(99.0), 1)});
  open_table.Print(std::cout);
  json.Add("open_loop", "served", "achieved_qps", achieved_qps);
  json.Add("open_loop", "latency", "p50_us",
           open.latency_us.Percentile(50.0));
  json.Add("open_loop", "latency", "p99_us",
           open.latency_us.Percentile(99.0));
  json.Add("open_loop", "count", "requests_sent",
           static_cast<double>(open.sent));
  json.Add("open_loop", "count", "responses_ok",
           static_cast<double>(open.ok));

  // 3. Hostile wire sweep.
  WireResult wire = RunWireSweep(server.port(), mix, wire_frames);
  util::PrintHeading(std::cout, "wire (seeded hostile sweep, " +
                                    std::to_string(wire_frames) + " frames)");
  std::printf("garbage frames: %llu sent, %llu rejected in-band; valid: "
              "%llu sent, %llu ok\n",
              static_cast<unsigned long long>(wire.garbage_sent),
              static_cast<unsigned long long>(wire.malformed_rejects),
              static_cast<unsigned long long>(wire.valid_sent),
              static_cast<unsigned long long>(wire.valid_ok));
  json.Add("wire", "count", "garbage_sent",
           static_cast<double>(wire.garbage_sent));
  json.Add("wire", "count", "malformed_rejects",
           static_cast<double>(wire.malformed_rejects));
  json.Add("wire", "count", "valid_ok",
           static_cast<double>(wire.valid_ok));

  bool drained = server.Shutdown();
  net::ServerStats stats = server.stats();
  json.Add("server", "count", "frames_in",
           static_cast<double>(stats.frames_in));
  json.Add("server", "count", "responses_out",
           static_cast<double>(stats.responses_out));
  json.Add("server", "count", "malformed_frames",
           static_cast<double>(stats.malformed_frames));
  json.Add("server", "count", "dropped_responses",
           static_cast<double>(stats.dropped_responses));
  if (!json.Write()) return 1;

  // Acceptance gates: the bench doubles as the end-to-end harness, so a
  // lost response, a failed valid request, an unrejected garbage frame or
  // a dirty drain all fail the run.
  const uint64_t expected =
      ping_rounds + connections * per_connection;
  uint64_t total_ok = ping.ok + open.ok + wire.valid_ok;
  uint64_t total_sent = ping.sent + open.sent + wire.valid_sent;
  if (ping.ok != ping_rounds || open.ok != connections * per_connection) {
    std::printf("FAIL: %llu/%llu valid responses received\n",
                static_cast<unsigned long long>(total_ok),
                static_cast<unsigned long long>(expected + wire.valid_sent));
    return 1;
  }
  if (wire.malformed_rejects != wire.garbage_sent ||
      wire.valid_ok != wire.valid_sent) {
    std::printf("FAIL: wire sweep: %llu/%llu garbage rejected, %llu/%llu "
                "valid ok\n",
                static_cast<unsigned long long>(wire.malformed_rejects),
                static_cast<unsigned long long>(wire.garbage_sent),
                static_cast<unsigned long long>(wire.valid_ok),
                static_cast<unsigned long long>(wire.valid_sent));
    return 1;
  }
  if (!drained || stats.dropped_responses != 0) {
    std::printf("FAIL: shutdown did not drain cleanly (%llu dropped)\n",
                static_cast<unsigned long long>(stats.dropped_responses));
    return 1;
  }
  std::printf("PASS: %llu/%llu responses delivered, %llu/%llu garbage "
              "frames rejected, clean drain\n",
              static_cast<unsigned long long>(total_ok),
              static_cast<unsigned long long>(total_sent),
              static_cast<unsigned long long>(wire.malformed_rejects),
              static_cast<unsigned long long>(wire.garbage_sent));
  return 0;
}
