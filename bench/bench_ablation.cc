// Ablations of the design choices DESIGN.md calls out:
//   1. Avoidance Condition 1 / 2 on/off -> prelim-l extraction cost.
//   2. The s(v) memoization of Update Top-Path-l -> operation counts.
//   3. Knapsack DP vs the paper's literal enumeration DP -> runtime growth.
//   4. Prelim-l vs complete OS input for every algorithm.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

using bench::MedianSeconds;
using bench::PickLargestSubjects;

void AblateAvoidanceConditions(const datasets::Dblp& d,
                               const gds::Gds& gds,
                               core::DataGraphBackend* backend,
                               const std::vector<rel::TupleId>& subjects) {
  util::PrintHeading(std::cout,
                     "Ablation 1: avoidance conditions (prelim-10 over 10 "
                     "author OSs; totals)");
  util::TablePrinter table({"variant", "select calls", "tuples read",
                            "|prelim| total", "AC1 skips", "AC2 fetches",
                            "time (ms)"});
  struct Variant {
    const char* name;
    bool ac1, ac2;
  };
  for (Variant v : {Variant{"AC1+AC2 (paper)", true, true},
                    Variant{"AC1 only", true, false},
                    Variant{"AC2 only", false, true},
                    Variant{"none (complete gen)", false, false}}) {
    core::OsGenOptions options;
    options.prelim_use_ac1 = v.ac1;
    options.prelim_use_ac2 = v.ac2;
    core::PrelimStats stats;
    size_t total_nodes = 0;
    backend->ResetStats();
    util::WallTimer timer;
    for (rel::TupleId t : subjects) {
      total_nodes += core::GeneratePrelimOs(d.db, gds, backend, t, 10,
                                            options, &stats)
                         .size();
    }
    double ms = timer.ElapsedMillis();
    table.AddRow({v.name, std::to_string(backend->stats().select_calls),
                  std::to_string(backend->stats().tuples_read),
                  std::to_string(total_nodes),
                  std::to_string(stats.ac1_subtree_skips),
                  std::to_string(stats.ac2_limited_fetches),
                  util::FormatDouble(ms, 2)});
  }
  table.Print(std::cout);
}

void AblateTopPathMemo(const datasets::Dblp& d, const gds::Gds& gds,
                       core::DataGraphBackend* backend,
                       const std::vector<rel::TupleId>& subjects) {
  util::PrintHeading(std::cout,
                     "Ablation 2: Update Top-Path-l with/without the s(v) "
                     "memoization (complete OSs; per-OS averages)");
  util::TablePrinter table({"l", "plain ops", "memo ops", "plain ms",
                            "memo ms", "identical results"});
  for (size_t l : {10u, 30u, 50u}) {
    uint64_t plain_ops = 0, memo_ops = 0;
    double plain_ms = 0, memo_ms = 0;
    bool identical = true;
    for (rel::TupleId t : subjects) {
      core::OsTree os = core::GenerateCompleteOs(d.db, gds, backend, t);
      core::SizeLStats sp, sm;
      util::WallTimer timer;
      core::Selection a = core::SizeLTopPath(os, l, &sp);
      plain_ms += timer.ElapsedMillis();
      timer.Reset();
      core::Selection b = core::SizeLTopPathMemo(os, l, &sm);
      memo_ms += timer.ElapsedMillis();
      plain_ops += sp.operations;
      memo_ops += sm.operations;
      identical &= a.nodes == b.nodes;
    }
    double n = static_cast<double>(subjects.size());
    table.AddRow({std::to_string(l), std::to_string(plain_ops / subjects.size()),
                  std::to_string(memo_ops / subjects.size()),
                  util::FormatDouble(plain_ms / n, 2),
                  util::FormatDouble(memo_ms / n, 2),
                  identical ? "yes" : "NO"});
  }
  table.Print(std::cout);
}

void AblateDpVariants(const datasets::Dblp& d, const gds::Gds& gds,
                      core::DataGraphBackend* backend,
                      rel::TupleId subject) {
  util::PrintHeading(std::cout,
                     "Ablation 3: knapsack DP vs literal enumeration DP "
                     "(one author OS)");
  core::OsTree os = core::GenerateCompleteOs(d.db, gds, backend, subject);
  std::printf("|OS| = %zu\n", os.size());
  util::TablePrinter table({"l", "knapsack ms", "knapsack ops",
                            "enumeration ms", "enumeration ops", "status"});
  constexpr uint64_t kBudget = 80'000'000;
  for (size_t l : {5u, 10u, 15u, 20u, 30u, 50u}) {
    core::SizeLStats ks, es;
    double k_ms = MedianSeconds([&] { core::SizeLDp(os, l, &ks); }) * 1e3;
    util::WallTimer timer;
    core::Selection e = core::SizeLDpEnumerate(os, l, kBudget, &es);
    double e_ms = timer.ElapsedMillis();
    core::Selection k = core::SizeLDp(os, l);
    std::string status = es.aborted
                             ? "enumeration exceeded budget"
                             : (std::abs(e.importance - k.importance) < 1e-6
                                    ? "same optimum"
                                    : "MISMATCH");
    table.AddRow({std::to_string(l), util::FormatDouble(k_ms, 2),
                  std::to_string(ks.operations),
                  util::FormatDouble(e_ms, 2), std::to_string(es.operations),
                  status});
  }
  table.Print(std::cout);
}

void AblatePrelimInput(const datasets::Dblp& d, const gds::Gds& gds,
                       core::DataGraphBackend* backend,
                       const std::vector<rel::TupleId>& subjects) {
  util::PrintHeading(std::cout,
                     "Ablation 4: prelim-l vs complete OS input "
                     "(l=20, per-OS averages over 10 author OSs)");
  util::TablePrinter table({"algorithm", "quality on complete %",
                            "quality on prelim %", "ms on complete",
                            "ms on prelim"});
  const size_t l = 20;
  struct Algo {
    const char* name;
    core::SizeLAlgorithm algo;
  };
  for (Algo a : {Algo{"DP (knapsack)", core::SizeLAlgorithm::kDp},
                 Algo{"Bottom-Up", core::SizeLAlgorithm::kBottomUp},
                 Algo{"Top-Path-Memo", core::SizeLAlgorithm::kTopPathMemo}}) {
    double qc = 0, qp = 0, tc = 0, tp = 0;
    for (rel::TupleId t : subjects) {
      core::OsTree complete = core::GenerateCompleteOs(d.db, gds, backend, t);
      core::OsTree prelim =
          core::GeneratePrelimOs(d.db, gds, backend, t, l);
      double opt = core::SizeLDp(complete, l).importance;
      util::WallTimer timer;
      core::Selection sc = core::RunSizeL(a.algo, complete, l);
      tc += timer.ElapsedMillis();
      timer.Reset();
      core::Selection sp = core::RunSizeL(a.algo, prelim, l);
      tp += timer.ElapsedMillis();
      qc += 100.0 * sc.importance / opt;
      qp += 100.0 * sp.importance / opt;
    }
    double n = static_cast<double>(subjects.size());
    table.AddRow({a.name, util::FormatDouble(qc / n, 2),
                  util::FormatDouble(qp / n, 2), util::FormatDouble(tc / n, 3),
                  util::FormatDouble(tp / n, 3)});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace osum

int main() {
  using namespace osum;
  std::cout << "Ablation benches (DESIGN.md section 6)\n";

  datasets::Dblp d = datasets::BuildDblp();
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);
  gds::Gds gds = datasets::DblpAuthorGds(d);
  std::vector<rel::TupleId> authors =
      PickLargestSubjects(d.db, gds, &backend, 400, 3, 10);

  AblateAvoidanceConditions(d, gds, &backend, authors);
  AblateTopPathMemo(d, gds, &backend, authors);
  AblateDpVariants(d, gds, &backend, authors[0]);
  AblatePrelimInput(d, gds, &backend, authors);
  return 0;
}
