// Figure 9: approximation quality of the greedy size-l algorithms — the
// ratio of achieved importance to the optimal (DP) importance — on
// complete and prelim-l OSs, for l = 5..50.
//
// Sub-figures: (a) DBLP Author (Aver|OS| ~1116), (b) DBLP Paper (~367),
// (c) TPC-H Customer (~176), (d) TPC-H Supplier (~1341), (e) a small DBLP
// Author OS (|OS| ~67), (f) DBLP Author across score settings.
//
// Paper reference points: Update Top-Path-l always >= Bottom-Up (by up to
// ~10%); prelim-l costs <= ~4% quality on Top-Path and ~0% on Bottom-Up;
// Paper OSs give 100% for all methods (monotonicity, Lemma 2); small OSs
// reach 100% once l is a sizable fraction of |OS|.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

using bench::LSweep;
using bench::MeanOsSize;
using bench::PickLargestSubjects;
using bench::PickSubjectByOsSize;

struct QualityRow {
  double bottom_up_complete = 0.0;
  double bottom_up_prelim = 0.0;
  double top_path_complete = 0.0;
  double top_path_prelim = 0.0;
};

QualityRow MeasureQuality(const rel::Database& db, const gds::Gds& gds,
                          core::OsBackend* backend,
                          const std::vector<rel::TupleId>& subjects,
                          size_t l) {
  QualityRow row;
  size_t count = 0;
  for (rel::TupleId t : subjects) {
    core::OsTree complete = core::GenerateCompleteOs(db, gds, backend, t);
    core::OsTree prelim = core::GeneratePrelimOs(db, gds, backend, t, l);
    double opt = core::SizeLDp(complete, l).importance;
    if (opt <= 0.0) continue;
    row.bottom_up_complete +=
        core::SizeLBottomUp(complete, l).importance / opt;
    row.bottom_up_prelim += core::SizeLBottomUp(prelim, l).importance / opt;
    row.top_path_complete += core::SizeLTopPath(complete, l).importance / opt;
    row.top_path_prelim += core::SizeLTopPath(prelim, l).importance / opt;
    ++count;
  }
  if (count > 0) {
    double scale = 100.0 / static_cast<double>(count);
    row.bottom_up_complete *= scale;
    row.bottom_up_prelim *= scale;
    row.top_path_complete *= scale;
    row.top_path_prelim *= scale;
  }
  return row;
}

void RunSubfigure(const std::string& title, const rel::Database& db,
                  const gds::Gds& gds, core::OsBackend* backend,
                  const std::vector<rel::TupleId>& subjects) {
  util::PrintHeading(
      std::cout,
      title + " (Aver|OS|=" +
          util::FormatDouble(MeanOsSize(db, gds, backend, subjects), 0) +
          ")");
  util::TablePrinter table({"l", "Bottom-Up (Complete)", "Bottom-Up (Prelim)",
                            "Top-Path (Complete)", "Top-Path (Prelim)"});
  for (size_t l : LSweep()) {
    QualityRow row = MeasureQuality(db, gds, backend, subjects, l);
    table.AddRow(std::to_string(l),
                 {row.bottom_up_complete, row.bottom_up_prelim,
                  row.top_path_complete, row.top_path_prelim});
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace osum

int main() {
  using namespace osum;
  std::cout << "Figure 9: approximation quality (% of optimal importance), "
               "10 OSs per G_DS\n";

  datasets::Dblp d = datasets::BuildDblp();
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend dblp_backend(d.db, d.links, d.data_graph);

  gds::Gds author_gds = datasets::DblpAuthorGds(d);
  std::vector<rel::TupleId> authors = PickLargestSubjects(
      d.db, author_gds, &dblp_backend, /*candidates=*/400, /*skip=*/3,
      /*count=*/10);
  RunSubfigure("Figure 9(a): DBLP Author", d.db, author_gds, &dblp_backend,
               authors);

  gds::Gds paper_gds = datasets::DblpPaperGds(d);
  std::vector<rel::TupleId> papers = PickLargestSubjects(
      d.db, paper_gds, &dblp_backend, 400, 3, 10);
  RunSubfigure("Figure 9(b): DBLP Paper", d.db, paper_gds, &dblp_backend,
               papers);

  datasets::Tpch t = datasets::BuildTpch();
  datasets::ApplyTpchScores(&t, 1, 0.85);
  core::DataGraphBackend tpch_backend(t.db, t.links, t.data_graph);

  gds::Gds customer_gds = datasets::TpchCustomerGds(t);
  std::vector<rel::TupleId> customers = PickLargestSubjects(
      t.db, customer_gds, &tpch_backend, 300, 5, 10);
  RunSubfigure("Figure 9(c): TPC-H Customer", t.db, customer_gds,
               &tpch_backend, customers);

  gds::Gds supplier_gds = datasets::TpchSupplierGds(t);
  std::vector<rel::TupleId> suppliers = PickLargestSubjects(
      t.db, supplier_gds, &tpch_backend, 80, 2, 10);
  RunSubfigure("Figure 9(d): TPC-H Supplier", t.db, supplier_gds,
               &tpch_backend, suppliers);

  // (e) A small author OS (paper: |OS| = 67; 100% from all methods by
  // l=25).
  rel::TupleId small_author =
      PickSubjectByOsSize(d.db, author_gds, &dblp_backend, 1500, 67);
  RunSubfigure("Figure 9(e): DBLP Author, small OS", d.db, author_gds,
               &dblp_backend, {small_author});

  // (f) Average approximation quality across score settings (DBLP Author).
  {
    util::PrintHeading(std::cout,
                       "Figure 9(f): DBLP Author across score settings "
                       "(average over l=5..50)");
    util::TablePrinter table({"setting", "Bottom-Up (Complete)",
                              "Bottom-Up (Prelim)", "Top-Path (Complete)",
                              "Top-Path (Prelim)"});
    for (const datasets::ScoreSetting& s : datasets::kScoreSettings) {
      datasets::ApplyDblpScores(&d, s.ga, s.damping);
      gds::Gds gds = datasets::DblpAuthorGds(d);
      QualityRow sum;
      const auto ls = LSweep();
      for (size_t l : ls) {
        QualityRow row = MeasureQuality(d.db, gds, &dblp_backend, authors, l);
        sum.bottom_up_complete += row.bottom_up_complete;
        sum.bottom_up_prelim += row.bottom_up_prelim;
        sum.top_path_complete += row.top_path_complete;
        sum.top_path_prelim += row.top_path_prelim;
      }
      double n = static_cast<double>(ls.size());
      table.AddRow(s.name,
                   {sum.bottom_up_complete / n, sum.bottom_up_prelim / n,
                    sum.top_path_complete / n, sum.top_path_prelim / n});
    }
    datasets::ApplyDblpScores(&d, 1, 0.85);
    table.Print(std::cout);
  }

  std::cout << "\npaper shape check: Top-Path >= Bottom-Up (gap up to "
               "~10%); prelim costs <= ~4%; Paper OSs ~100% everywhere.\n";
  return 0;
}
