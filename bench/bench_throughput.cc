// Concurrent query throughput over a shared immutable SearchContext.
//
// The scaling claim behind SearchContext::ExecuteBatch: size-l keyword
// queries are per-query parallel (each walks its own t_DS hits and OS
// trees against read-only structures), so batching them over a thread pool
// should scale with cores. This driver speaks the api layer's
// QueryRequest/QueryResponse contract end to end; it builds one context
// per dataset and sweeps the worker count over a fixed keyword mix:
//   - DBLP mix: author surnames + paper-title terms (hits with large OSs,
//     CPU-bound on OS generation + size-l).
//   - TPC-H mix: customer/supplier names against the simulated-latency
//     DatabaseBackend (8us per SELECT), the paper's "direct from the DBMS"
//     path — latency hiding, not just CPU scaling.
// Each sweep prints wall time, queries/s and speedup vs the 1-thread run,
// and cross-checks that the batched results match serial execution. True
// speedup requires physical cores; on a 1-CPU host the table degenerates
// to ~1.0x.
//
// Flags: --json <path> (machine-readable rows, see bench::JsonReport),
// --tiny (shrunken datasets for the CI smoke).
#include <iostream>
#include <string>
#include <vector>

#include "api/query.h"
#include "bench_common.h"
#include "search/search_context.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace osum {
namespace {

const std::vector<size_t> kThreadSweep = {1, 2, 4, 8};
constexpr int kReps = 3;

/// Repeats the base mix until the batch is large enough to amortize pool
/// startup and give every worker several queries.
std::vector<std::string> RepeatMix(std::vector<std::string> base,
                                   size_t target) {
  std::vector<std::string> mix;
  mix.reserve(target);
  while (mix.size() < target) {
    for (const std::string& q : base) {
      if (mix.size() >= target) break;
      mix.push_back(q);
    }
  }
  return mix;
}

/// The string mix as api requests — what the sweep actually executes.
std::vector<api::QueryRequest> ToRequests(
    const std::vector<std::string>& queries,
    const search::QueryOptions& options) {
  std::vector<api::QueryRequest> requests;
  requests.reserve(queries.size());
  for (const std::string& q : queries) {
    requests.push_back(api::QueryRequest(q).WithOptions(options));
  }
  return requests;
}

/// Fingerprint of a response batch: selection importances and OS sizes are
/// enough to detect any cross-thread divergence. A non-OK response (there
/// should be none in this mix) poisons the sum.
double Checksum(const std::vector<api::QueryResponse>& batch) {
  double sum = 0.0;
  for (const api::QueryResponse& response : batch) {
    if (!response.ok()) return -1.0;
    for (const api::QueryResult& r : response.result_list()) {
      sum += r.selection.importance + static_cast<double>(r.os.size()) +
             static_cast<double>(r.subject.tuple);
    }
  }
  return sum;
}

void RunSweep(const std::string& title, const search::SearchContext& ctx,
              const std::vector<std::string>& queries,
              const search::QueryOptions& options, bench::JsonReport* json) {
  util::PrintHeading(std::cout, title + " (" + std::to_string(queries.size()) +
                                    " queries, l=" +
                                    std::to_string(options.l) + ", backend=" +
                                    ctx.backend()->name() + ")");
  std::vector<api::QueryRequest> requests = ToRequests(queries, options);

  // Serial reference: the plain Execute loop ExecuteBatch must reproduce.
  double serial_s = bench::MedianSeconds(
      [&] {
        for (const api::QueryRequest& r : requests) ctx.Execute(r);
      },
      kReps);
  double reference = Checksum(ctx.ExecuteBatch(requests, size_t{1}));

  util::TablePrinter table(
      {"threads", "wall ms", "queries/s", "speedup vs 1T", "matches serial"});
  double base_s = 0.0;
  for (size_t threads : kThreadSweep) {
    util::ThreadPool pool(threads);
    double secs = bench::MedianSeconds(
        [&] { ctx.ExecuteBatch(requests, pool); }, kReps);
    if (threads == kThreadSweep.front()) base_s = secs;
    bool matches =
        Checksum(ctx.ExecuteBatch(requests, pool)) == reference;
    table.AddRow({std::to_string(threads), util::FormatDouble(secs * 1e3, 1),
                  util::FormatDouble(static_cast<double>(queries.size()) / secs, 0),
                  util::FormatDouble(base_s / secs, 2),
                  matches ? "yes" : "NO"});
    std::string label = std::to_string(threads) + "T";
    json->Add(title, label, "wall_ms", secs * 1e3);
    json->Add(title, label, "qps",
              static_cast<double>(queries.size()) / secs);
    json->Add(title, label, "speedup_vs_1t", base_s / secs);
  }
  json->Add(title, "serial", "wall_ms", serial_s * 1e3);
  table.AddRow({"serial", util::FormatDouble(serial_s * 1e3, 1),
                util::FormatDouble(static_cast<double>(queries.size()) / serial_s, 0),
                util::FormatDouble(base_s / serial_s, 2), "-"});
  table.Print(std::cout);
  std::cout << "\n";
}

void BenchDblp(bool tiny, bench::JsonReport* json) {
  datasets::DblpConfig config;
  config.num_authors = tiny ? 120 : 800;
  config.num_papers = tiny ? 480 : 3200;
  config.num_conferences = tiny ? 8 : 20;
  datasets::Dblp d = datasets::BuildDblp(config);
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);

  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  search::SearchContext ctx =
      search::SearchContext::Build(d.db, &backend, std::move(subjects));

  // Surnames of the most prolific authors (largest OSs) + common title
  // terms: the worst-case mix the paper's Section 6 timings are about.
  std::vector<std::string> base;
  for (rel::TupleId t = 0; t < (tiny ? 8u : 24u); ++t) {
    std::string name = d.db.relation(d.author).StringValue(t, 0);
    base.push_back(name.substr(name.rfind(' ') + 1));
  }
  base.insert(base.end(), {"databases", "mining", "graphs", "clustering",
                           "indexing", "streams", "power law", "queries"});

  search::QueryOptions options;
  options.l = 15;
  options.max_results = 5;
  RunSweep("DBLP mix, data-graph back end", ctx,
           RepeatMix(base, tiny ? 16 : 96), options, json);
}

void BenchTpch(bool tiny, bench::JsonReport* json) {
  datasets::TpchConfig config;
  config.num_customers = tiny ? 80 : 600;
  config.num_suppliers = tiny ? 10 : 40;
  config.num_parts = tiny ? 120 : 800;
  datasets::Tpch t = datasets::BuildTpch(config);
  datasets::ApplyTpchScores(&t, 1, 0.85);
  core::DatabaseBackend backend(t.db, t.links, /*per_select_micros=*/8.0);

  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({t.customer, datasets::TpchCustomerGds(t)});
  subjects.push_back({t.supplier, datasets::TpchSupplierGds(t)});
  search::SearchContext ctx =
      search::SearchContext::Build(t.db, &backend, std::move(subjects));

  std::vector<std::string> base;
  for (rel::TupleId c = 0; c < (tiny ? 8u : 24u); ++c) {
    base.push_back(t.db.relation(t.customer).StringValue(c, 0));
  }
  for (rel::TupleId s = 0; s < (tiny ? 2u : 8u); ++s) {
    base.push_back(t.db.relation(t.supplier).StringValue(s, 0));
  }

  search::QueryOptions options;
  options.l = 10;
  options.max_results = 3;
  RunSweep("TPC-H mix, simulated-latency database back end", ctx,
           RepeatMix(base, tiny ? 12 : 64), options, json);
}

}  // namespace
}  // namespace osum

int main(int argc, char** argv) {
  osum::bench::JsonReport json =
      osum::bench::JsonReport::FromArgs(argc, argv, "bench_throughput");
  bool tiny = osum::bench::TinyFromArgs(argc, argv);
  std::cout << "hardware threads: " << osum::util::ThreadPool::HardwareThreads()
            << "\n\n";
  osum::BenchDblp(tiny, &json);
  osum::BenchTpch(tiny, &json);
  return json.Write() ? 0 : 1;
}
