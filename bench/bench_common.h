// Shared plumbing for the figure-reproduction benches: dataset builders,
// subject pickers, score utilities, and the machine-readable `--json`
// output mode every driver supports (checked-in baselines live under
// bench/baselines/ so perf PRs can diff against this container's numbers).
#ifndef OSUM_BENCH_BENCH_COMMON_H_
#define OSUM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/os_backend.h"
#include "core/os_export.h"
#include "core/os_generator.h"
#include "core/os_tree.h"
#include "core/size_l.h"
#include "datasets/dblp.h"
#include "datasets/settings.h"
#include "datasets/tpch.h"
#include "eval/evaluator.h"
#include "util/timer.h"

namespace osum::bench {

/// Machine-readable bench output: flat {section, label, metric, value}
/// rows written as one JSON document. Drivers call FromArgs(argc, argv)
/// once, Add() next to every table cell worth tracking, and Write() before
/// exiting. Without `--json <path>` on the command line the report is
/// inert (Add/Write are no-ops), so the human tables stay the default.
class JsonReport {
 public:
  /// Recognizes `--json <path>` (and `--json=<path>`) anywhere in argv.
  /// `--json` without a path is a usage error: exits non-zero instead of
  /// silently writing nothing (CI would read the stale previous report).
  static JsonReport FromArgs(int argc, char** argv, std::string bench_name) {
    JsonReport report;
    report.bench_ = std::move(bench_name);
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg == "--json") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: --json requires a path argument\n"
                               "usage: %s [--tiny] [--json <path>]\n",
                       argv[0]);
          std::exit(2);
        }
        report.path_ = argv[++i];
      } else if (arg.rfind("--json=", 0) == 0) {
        report.path_ = std::string(arg.substr(7));
        if (report.path_.empty()) {
          std::fprintf(stderr, "error: --json= requires a path argument\n");
          std::exit(2);
        }
      }
    }
    return report;
  }

  bool active() const { return !path_.empty(); }

  void Add(std::string_view section, std::string_view label,
           std::string_view metric, double value) {
    if (!active()) return;
    rows_.push_back(Row{std::string(section), std::string(label),
                        std::string(metric), value});
  }

  /// Writes the document; returns false (after printing to stderr) when
  /// the path cannot be written. No-op true when inactive.
  bool Write() const {
    if (!active()) return true;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "error: cannot write --json path %s\n",
                   path_.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << Escape(bench_) << "\",\n  \"rows\": [";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      out << (i == 0 ? "" : ",") << "\n    {\"section\": \""
          << Escape(r.section) << "\", \"label\": \"" << Escape(r.label)
          << "\", \"metric\": \"" << Escape(r.metric) << "\", \"value\": "
          << Number(r.value) << "}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: short write to --json path %s\n",
                   path_.c_str());
      return false;
    }
    std::printf("wrote %zu json rows to %s\n", rows_.size(), path_.c_str());
    return true;
  }

 private:
  struct Row {
    std::string section, label, metric;
    double value;
  };

  // Labels are bench-controlled ASCII, but escape anyway so a stray quote
  // cannot corrupt the document; reuses the tested core escaper.
  static std::string Escape(std::string_view s) {
    return core::JsonEscape(std::string(s));
  }

  // JSON has no NaN/Inf literals; timings can legitimately divide by ~0.
  static std::string Number(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::string bench_;
  std::string path_;
  std::vector<Row> rows_;
};

/// True when `--tiny` is on the command line: drivers shrink datasets and
/// reps so scripts/ci.sh can smoke the bench + JSON plumbing in seconds.
inline bool TinyFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--tiny") return true;
  }
  return false;
}

/// The paper's l sweep in Figures 9 and 10.
inline std::vector<size_t> LSweep() { return {5, 10, 15, 20, 25, 30, 35, 40,
                                              45, 50}; }

/// The paper's l sweep in Figure 8.
inline std::vector<size_t> LSweepEffectiveness() {
  return {5, 10, 15, 20, 25, 30};
}

/// Per-node local importance of an existing OS under the *current* score
/// annotations (used to re-score a fixed tree after switching settings).
inline std::vector<double> CurrentScores(const rel::Database& db,
                                         const gds::Gds& gds,
                                         const core::OsTree& os) {
  std::vector<double> scores(os.size());
  for (size_t i = 0; i < os.size(); ++i) {
    const core::OsNode& n = os.node(static_cast<core::OsNodeId>(i));
    scores[i] = db.relation(n.relation).importance(n.tuple) *
                gds.node(n.gds_node).affinity;
  }
  return scores;
}

/// Picks `count` subjects whose complete OS is largest (the "random OSs"
/// of Section 6 skew large: Aver|OS| is ~1116 for DBLP authors). Skips the
/// top `skip` to avoid only-degenerate giants.
inline std::vector<rel::TupleId> PickLargestSubjects(
    const rel::Database& db, const gds::Gds& gds, core::OsBackend* backend,
    size_t candidates, size_t skip, size_t count) {
  std::vector<std::pair<size_t, rel::TupleId>> sizes;
  size_t n = std::min<size_t>(candidates,
                              db.relation(gds.root_relation()).num_tuples());
  for (rel::TupleId t = 0; t < n; ++t) {
    core::OsTree os = core::GenerateCompleteOs(db, gds, backend, t);
    sizes.emplace_back(os.size(), t);
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  std::vector<rel::TupleId> picked;
  for (size_t i = skip; i < sizes.size() && picked.size() < count; ++i) {
    picked.push_back(sizes[i].second);
  }
  return picked;
}

/// Picks the subject whose complete OS size is closest to `target`.
inline rel::TupleId PickSubjectByOsSize(const rel::Database& db,
                                        const gds::Gds& gds,
                                        core::OsBackend* backend,
                                        size_t candidates, size_t target) {
  rel::TupleId best = 0;
  size_t best_delta = static_cast<size_t>(-1);
  size_t n = std::min<size_t>(candidates,
                              db.relation(gds.root_relation()).num_tuples());
  for (rel::TupleId t = 0; t < n; ++t) {
    size_t size = core::GenerateCompleteOs(db, gds, backend, t).size();
    size_t delta = size > target ? size - target : target - size;
    if (delta < best_delta) {
      best_delta = delta;
      best = t;
    }
  }
  return best;
}

/// Mean complete-OS size over a subject set.
inline double MeanOsSize(const rel::Database& db, const gds::Gds& gds,
                         core::OsBackend* backend,
                         const std::vector<rel::TupleId>& subjects) {
  double sum = 0.0;
  for (rel::TupleId t : subjects) {
    sum += static_cast<double>(
        core::GenerateCompleteOs(db, gds, backend, t).size());
  }
  return subjects.empty() ? 0.0 : sum / static_cast<double>(subjects.size());
}

/// Median wall time of `fn` over `reps` runs, in seconds.
template <typename Fn>
double MedianSeconds(Fn&& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace osum::bench

#endif  // OSUM_BENCH_BENCH_COMMON_H_
