// Shared plumbing for the figure-reproduction benches: dataset builders,
// subject pickers and score utilities.
#ifndef OSUM_BENCH_BENCH_COMMON_H_
#define OSUM_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/os_tree.h"
#include "core/size_l.h"
#include "datasets/dblp.h"
#include "datasets/settings.h"
#include "datasets/tpch.h"
#include "eval/evaluator.h"
#include "util/timer.h"

namespace osum::bench {

/// The paper's l sweep in Figures 9 and 10.
inline std::vector<size_t> LSweep() { return {5, 10, 15, 20, 25, 30, 35, 40,
                                              45, 50}; }

/// The paper's l sweep in Figure 8.
inline std::vector<size_t> LSweepEffectiveness() {
  return {5, 10, 15, 20, 25, 30};
}

/// Per-node local importance of an existing OS under the *current* score
/// annotations (used to re-score a fixed tree after switching settings).
inline std::vector<double> CurrentScores(const rel::Database& db,
                                         const gds::Gds& gds,
                                         const core::OsTree& os) {
  std::vector<double> scores(os.size());
  for (size_t i = 0; i < os.size(); ++i) {
    const core::OsNode& n = os.node(static_cast<core::OsNodeId>(i));
    scores[i] = db.relation(n.relation).importance(n.tuple) *
                gds.node(n.gds_node).affinity;
  }
  return scores;
}

/// Picks `count` subjects whose complete OS is largest (the "random OSs"
/// of Section 6 skew large: Aver|OS| is ~1116 for DBLP authors). Skips the
/// top `skip` to avoid only-degenerate giants.
inline std::vector<rel::TupleId> PickLargestSubjects(
    const rel::Database& db, const gds::Gds& gds, core::OsBackend* backend,
    size_t candidates, size_t skip, size_t count) {
  std::vector<std::pair<size_t, rel::TupleId>> sizes;
  size_t n = std::min<size_t>(candidates,
                              db.relation(gds.root_relation()).num_tuples());
  for (rel::TupleId t = 0; t < n; ++t) {
    core::OsTree os = core::GenerateCompleteOs(db, gds, backend, t);
    sizes.emplace_back(os.size(), t);
  }
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  std::vector<rel::TupleId> picked;
  for (size_t i = skip; i < sizes.size() && picked.size() < count; ++i) {
    picked.push_back(sizes[i].second);
  }
  return picked;
}

/// Picks the subject whose complete OS size is closest to `target`.
inline rel::TupleId PickSubjectByOsSize(const rel::Database& db,
                                        const gds::Gds& gds,
                                        core::OsBackend* backend,
                                        size_t candidates, size_t target) {
  rel::TupleId best = 0;
  size_t best_delta = static_cast<size_t>(-1);
  size_t n = std::min<size_t>(candidates,
                              db.relation(gds.root_relation()).num_tuples());
  for (rel::TupleId t = 0; t < n; ++t) {
    size_t size = core::GenerateCompleteOs(db, gds, backend, t).size();
    size_t delta = size > target ? size - target : target - size;
    if (delta < best_delta) {
      best_delta = delta;
      best = t;
    }
  }
  return best;
}

/// Mean complete-OS size over a subject set.
inline double MeanOsSize(const rel::Database& db, const gds::Gds& gds,
                         core::OsBackend* backend,
                         const std::vector<rel::TupleId>& subjects) {
  double sum = 0.0;
  for (rel::TupleId t : subjects) {
    sum += static_cast<double>(
        core::GenerateCompleteOs(db, gds, backend, t).size());
  }
  return subjects.empty() ? 0.0 : sum / static_cast<double>(subjects.size());
}

/// Median wall time of `fn` over `reps` runs, in seconds.
template <typename Fn>
double MedianSeconds(Fn&& fn, int reps = 3) {
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    util::WallTimer timer;
    fn();
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace osum::bench

#endif  // OSUM_BENCH_BENCH_COMMON_H_
