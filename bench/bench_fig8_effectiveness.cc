// Figure 8: effectiveness (recall = precision) of the optimal size-l OS
// against (simulated) human evaluators, for score settings GA1-d1, GA1-d2,
// GA1-d3 and GA2-d1, on DBLP Author/Paper and TPC-H Customer/Supplier
// G_DSs, l = 5..30.
//
// Paper reference points: on DBLP Author, GA1-d1 ranges from ~40-60% at
// l=5 to 75-90% at l=10..30 and GA1-d1/GA1-d3 dominate at larger l, while
// GA1-d2's "papers-first" bias helps at l=5; on TPC-H, GA1 is the safe
// option (60-78%) and GA2 falls behind on Supplier OSs.
#include <iostream>

#include "bench_common.h"
#include "util/table_printer.h"

namespace osum {
namespace {

using bench::CurrentScores;
using bench::LSweepEffectiveness;

// Effectiveness of the optimal size-l OS under each setting, averaged over
// subjects and evaluators. `apply_setting` re-ranks the database in place.
template <typename ApplyFn>
void RunFigure(const std::string& title, const rel::Database& db,
               const gds::Gds& gds, core::OsBackend* backend,
               const std::vector<rel::TupleId>& subjects,
               const eval::EvaluatorPanelConfig& panel_config,
               ApplyFn&& apply_setting) {
  // 1. Reference OSs and evaluator ideals under the default setting.
  apply_setting(datasets::kDefaultSetting);
  std::vector<core::OsTree> oss;
  std::vector<std::vector<double>> reference;
  for (rel::TupleId t : subjects) {
    oss.push_back(core::GenerateCompleteOs(db, gds, backend, t));
    reference.push_back(eval::NodeScores(oss.back()));
  }
  eval::EvaluatorPanel panel(panel_config);
  // ideals[subject][l-index][evaluator]
  std::vector<std::vector<std::vector<core::Selection>>> ideals(
      subjects.size());
  const std::vector<size_t> ls = LSweepEffectiveness();
  for (size_t s = 0; s < subjects.size(); ++s) {
    ideals[s].resize(ls.size());
    for (size_t li = 0; li < ls.size(); ++li) {
      for (size_t e = 0; e < panel.size(); ++e) {
        ideals[s][li].push_back(
            panel.IdealSizeL(oss[s], gds, reference[s], e, ls[li]));
      }
    }
  }

  // 2. For each setting: re-rank, re-score the fixed trees, measure.
  util::TablePrinter table({"l", "GA1-d1", "GA1-d2", "GA1-d3", "GA2-d1"});
  std::vector<std::vector<double>> eff(ls.size());
  for (const datasets::ScoreSetting& setting : datasets::kScoreSettings) {
    apply_setting(setting);
    for (size_t li = 0; li < ls.size(); ++li) {
      double sum = 0.0;
      size_t count = 0;
      for (size_t s = 0; s < subjects.size(); ++s) {
        core::OsTree rescored =
            eval::ReweightOs(oss[s], CurrentScores(db, gds, oss[s]));
        core::Selection ours = core::SizeLDp(rescored, ls[li]);
        for (size_t e = 0; e < panel.size(); ++e) {
          sum += eval::Effectiveness(ours, ideals[s][li][e], ls[li]);
          ++count;
        }
      }
      eff[li].push_back(100.0 * sum / static_cast<double>(count));
    }
  }
  apply_setting(datasets::kDefaultSetting);  // leave db in default state

  util::PrintHeading(std::cout, title);
  for (size_t li = 0; li < ls.size(); ++li) {
    table.AddRow(std::to_string(ls[li]), eff[li]);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace osum

int main() {
  using namespace osum;
  std::cout << "Figure 8: effectiveness (%) of the optimal size-l OS vs "
               "simulated evaluators\n";

  {
    datasets::Dblp d = datasets::BuildDblp();
    core::DataGraphBackend backend(d.db, d.links, d.data_graph);
    auto apply = [&d](const datasets::ScoreSetting& s) {
      datasets::ApplyDblpScores(&d, s.ga, s.damping);
    };
    apply(datasets::kDefaultSetting);

    // 11 DBLP authors "evaluating themselves": the seeded brothers plus a
    // productivity spread (author id doubles as Zipf productivity rank).
    std::vector<rel::TupleId> authors{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89};
    gds::Gds author_gds = datasets::DblpAuthorGds(d);
    RunFigure("Figure 8(a): DBLP Author (optimal size-l OS)", d.db,
              author_gds, &backend, authors,
              eval::DblpEvaluatorConfig(11), apply);

    std::vector<rel::TupleId> papers{0, 1, 2, 3, 5, 8, 13, 21, 34, 55};
    gds::Gds paper_gds = datasets::DblpPaperGds(d);
    RunFigure("Figure 8(b): DBLP Paper (optimal size-l OS)", d.db, paper_gds,
              &backend, papers, eval::DblpEvaluatorConfig(11, 4021), apply);
  }

  {
    datasets::Tpch t = datasets::BuildTpch();
    core::DataGraphBackend backend(t.db, t.links, t.data_graph);
    auto apply = [&t](const datasets::ScoreSetting& s) {
      datasets::ApplyTpchScores(&t, s.ga, s.damping);
    };
    apply(datasets::kDefaultSetting);

    std::vector<rel::TupleId> customers{3, 17, 42, 77, 101, 256, 511, 900};
    gds::Gds customer_gds = datasets::TpchCustomerGds(t);
    RunFigure("Figure 8(c): TPC-H Customer (optimal size-l OS)", t.db,
              customer_gds, &backend, customers,
              eval::TpchEvaluatorConfig(8), apply);

    std::vector<rel::TupleId> suppliers{1, 5, 11, 23, 37, 53, 61, 72};
    gds::Gds supplier_gds = datasets::TpchSupplierGds(t);
    RunFigure("Figure 8(d): TPC-H Supplier (optimal size-l OS)", t.db,
              supplier_gds, &backend, suppliers,
              eval::TpchEvaluatorConfig(8, 555), apply);
  }

  std::cout << "\npaper shape check: GA1-d1/GA1-d3 should dominate at "
               "larger l; effectiveness should rise with l.\n";
  return 0;
}
