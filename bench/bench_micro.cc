// google-benchmark microbenchmarks of the algorithm kernels on synthetic
// OS trees: scaling of the size-l algorithms with n and l, OS generation,
// prelim-l generation and ObjectRank iterations.
//
// With `--json <path>` the driver instead runs the deterministic DP
// hot-path workload (ISSUE 10) and emits machine-independent
// bench::JsonReport rows the perf lane gates near-exactly:
//   - dp_queries / dp_allocations / dp_bytes_reserved — a batch of size-l
//     DP runs through one shared DpScratch must cost O(1) arena blocks
//     total, not O(nodes) allocations per tree;
//   - partials_reused / partials_misses / partials_inserts /
//     partials_entries — the per-(subject, l) memo must get nonzero reuse
//     on an overlapping-keyword workload.
// Both sections carry internal correctness guards (shared-scratch vs
// fresh selections; memo-on vs memo-off DeterministicResultText) and exit
// nonzero on any mismatch, so the perf lane cannot green-light a fast but
// wrong hot path.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "api/codec.h"
#include "bench_common.h"
#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/size_l.h"
#include "datasets/dblp.h"
#include "search/search_context.h"
#include "util/rng.h"

namespace {

using namespace osum;

core::OsTree RandomTree(uint64_t seed, size_t n) {
  util::Rng rng(seed);
  core::OsTree os;
  os.AddRoot(0, 0, 0, rng.NextDouble() * 100);
  for (size_t i = 1; i < n; ++i) {
    size_t parent = rng.NextBernoulli(0.7) ? i - 1 - rng.NextU64(std::max<size_t>(1, i / 3))
                                           : rng.NextU64(i);
    os.AddChild(static_cast<core::OsNodeId>(parent), 0, 0,
                static_cast<rel::TupleId>(i), rng.NextDouble() * 100);
  }
  return os;
}

void BM_SizeLDp(benchmark::State& state) {
  core::OsTree os = RandomTree(1, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLDp(os, l));
  }
}
BENCHMARK(BM_SizeLDp)
    ->Args({100, 10})
    ->Args({1000, 10})
    ->Args({1000, 50})
    ->Args({10000, 10})
    ->Args({10000, 50});

// The arena-backed variant: same DP, table storage reused across
// iterations through one DpScratch (the per-worker steady state).
void BM_SizeLDpScratch(benchmark::State& state) {
  core::OsTree os = RandomTree(1, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  core::DpScratch scratch;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLDp(os, l, &scratch));
  }
}
BENCHMARK(BM_SizeLDpScratch)
    ->Args({100, 10})
    ->Args({1000, 10})
    ->Args({1000, 50})
    ->Args({10000, 10})
    ->Args({10000, 50});

void BM_SizeLBottomUp(benchmark::State& state) {
  core::OsTree os = RandomTree(2, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLBottomUp(os, l));
  }
}
BENCHMARK(BM_SizeLBottomUp)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({10000, 50})
    ->Args({100000, 50});

void BM_SizeLTopPath(benchmark::State& state) {
  core::OsTree os = RandomTree(3, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLTopPath(os, l));
  }
}
BENCHMARK(BM_SizeLTopPath)->Args({1000, 10})->Args({10000, 10})->Args({10000, 50});

void BM_SizeLTopPathMemo(benchmark::State& state) {
  core::OsTree os = RandomTree(3, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLTopPathMemo(os, l));
  }
}
BENCHMARK(BM_SizeLTopPathMemo)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({10000, 50})
    ->Args({100000, 50});

// Shared fixture for database-dependent benchmarks.
struct DblpFixture {
  datasets::Dblp d;
  gds::Gds gds;
  std::unique_ptr<core::DataGraphBackend> backend;

  DblpFixture() : d(datasets::BuildDblp()) {
    datasets::ApplyDblpScores(&d, 1, 0.85);
    gds = datasets::DblpAuthorGds(d);
    backend =
        std::make_unique<core::DataGraphBackend>(d.db, d.links, d.data_graph);
  }

  static DblpFixture& Get() {
    static DblpFixture fixture;
    return fixture;
  }
};

void BM_GenerateCompleteOs(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  rel::TupleId tds = static_cast<rel::TupleId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GenerateCompleteOs(f.d.db, f.gds, f.backend.get(), tds));
  }
}
BENCHMARK(BM_GenerateCompleteOs)->Arg(0)->Arg(50)->Arg(500);

void BM_GeneratePrelimOs(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  rel::TupleId tds = static_cast<rel::TupleId>(state.range(0));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GeneratePrelimOs(f.d.db, f.gds, f.backend.get(), tds, l));
  }
}
BENCHMARK(BM_GeneratePrelimOs)->Args({0, 10})->Args({0, 50})->Args({50, 10});

void BM_ObjectRank(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  importance::AuthorityGraph ga = datasets::DblpGa1(f.d);
  importance::ObjectRankOptions options;
  options.max_iterations = static_cast<int>(state.range(0));
  options.epsilon = 0.0;  // force exactly max_iterations
  for (auto _ : state) {
    benchmark::DoNotOptimize(importance::ComputeObjectRank(
        f.d.db, f.d.links, f.d.data_graph, ga, options));
  }
}
BENCHMARK(BM_ObjectRank)->Arg(1)->Arg(10);

void BM_DataGraphBuild(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::DataGraph::Build(f.d.db, f.d.links));
  }
}
BENCHMARK(BM_DataGraphBuild);

// ---------------------------------------------------------------------------
// Deterministic --json mode (the perf-lane gate rows).

// A batch of size-l DP runs through ONE shared DpScratch. The gate rows
// pin the arena claim: block_allocations stays a small constant (the
// geometric block list warms once) no matter how many trees run through.
int ReportDpBatch(bench::JsonReport& report, bool tiny) {
  const size_t trees = tiny ? 8 : 48;
  const size_t n = tiny ? 200 : 4000;
  const size_t l = 25;
  core::DpScratch scratch;
  uint64_t operations = 0;
  for (size_t i = 0; i < trees; ++i) {
    core::OsTree os = RandomTree(100 + i, n);
    core::SizeLStats stats;
    core::Selection shared = core::SizeLDp(os, l, &scratch, &stats);
    core::Selection fresh = core::SizeLDp(os, l);
    if (shared.nodes != fresh.nodes ||
        shared.importance != fresh.importance) {
      std::fprintf(stderr,
                   "FAIL: shared-scratch DP diverged from fresh DP "
                   "(tree %zu)\n",
                   i);
      return 1;
    }
    operations += stats.operations;
  }
  report.Add("dp", "batch", "dp_queries", static_cast<double>(trees));
  report.Add("dp", "batch", "dp_operations", static_cast<double>(operations));
  report.Add("dp", "batch", "dp_allocations",
             static_cast<double>(scratch.arena.block_allocations()));
  report.Add("dp", "batch", "dp_bytes_reserved",
             static_cast<double>(scratch.arena.bytes_reserved()));
  std::printf("dp: %zu trees (n=%zu, l=%zu), %llu ops, %llu arena blocks, "
              "%llu bytes reserved\n",
              trees, n, l, static_cast<unsigned long long>(operations),
              static_cast<unsigned long long>(
                  scratch.arena.block_allocations()),
              static_cast<unsigned long long>(
                  scratch.arena.bytes_reserved()));
  return 0;
}

// An overlapping-keyword workload through SearchContext, memo-on vs
// memo-off. The reuse counters are single-threaded and deterministic; the
// byte-equivalence guard makes "fast but wrong" impossible to gate green.
int ReportPartialsWorkload(bench::JsonReport& report, bool tiny) {
  datasets::Dblp d = datasets::BuildDblp();
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);

  auto build = [&] {
    std::vector<search::SearchContext::Subject> subjects;
    subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
    subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
    return search::SearchContext::Build(d.db, &backend, std::move(subjects));
  };
  search::SearchContext with_memo = build();
  search::SearchContext without_memo = build();
  core::PartialsMemoOptions off;
  off.enabled = false;
  without_memo.partials_memo().Configure(off);

  // Every keyword set overlaps the others on the Faloutsos/databases
  // subjects, so passes 2+ reuse the memoized per-subject synopses.
  std::vector<std::string> queries = {"databases", "faloutsos",
                                      "christos faloutsos", "databases"};
  search::QueryOptions options;
  options.l = tiny ? 5 : 15;
  const int passes = tiny ? 2 : 4;
  for (int pass = 0; pass < passes; ++pass) {
    for (const std::string& q : queries) {
      std::string on =
          api::DeterministicResultText(with_memo.Query(q, options));
      std::string plain =
          api::DeterministicResultText(without_memo.Query(q, options));
      if (on != plain) {
        std::fprintf(stderr,
                     "FAIL: memo-on query diverged from memo-off "
                     "(pass %d, query \"%s\")\n",
                     pass, q.c_str());
        return 1;
      }
    }
  }

  core::PartialsMemoMetrics m = with_memo.partials_memo().metrics();
  report.Add("partials", "overlap", "partials_reused",
             static_cast<double>(m.hits));
  report.Add("partials", "overlap", "partials_misses",
             static_cast<double>(m.misses));
  report.Add("partials", "overlap", "partials_inserts",
             static_cast<double>(m.inserts));
  report.Add("partials", "overlap", "partials_entries",
             static_cast<double>(m.entries));
  std::printf("partials: %llu reused, %llu misses, %llu inserts, "
              "%llu entries\n",
              static_cast<unsigned long long>(m.hits),
              static_cast<unsigned long long>(m.misses),
              static_cast<unsigned long long>(m.inserts),
              static_cast<unsigned long long>(m.entries));
  if (m.hits == 0) {
    std::fprintf(stderr,
                 "FAIL: overlapping workload produced zero partials "
                 "reuse\n");
    return 1;
  }
  return 0;
}

int RunDeterministicReport(bench::JsonReport& report, bool tiny) {
  int rc = ReportDpBatch(report, tiny);
  if (rc != 0) return rc;
  rc = ReportPartialsWorkload(report, tiny);
  if (rc != 0) return rc;
  return report.Write() ? 0 : 1;
}

}  // namespace

// Custom main: `--json <path>` selects the deterministic gate-row report
// above (bench::JsonReport format, same bench/baselines/ workflow as the
// table drivers); without it the google-benchmark timing tables run.
// `--tiny` shrinks the deterministic workload, or maps onto a short
// --benchmark_min_time in timing mode.
int main(int argc, char** argv) {
  osum::bench::JsonReport report =
      osum::bench::JsonReport::FromArgs(argc, argv, "bench_micro");
  bool tiny = osum::bench::TinyFromArgs(argc, argv);
  if (report.active()) {
    return RunDeterministicReport(report, tiny);
  }

  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> translated;
  translated.reserve(args.size() + 1);
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--tiny") {
      // Smoke mode: one fast iteration per benchmark.
      translated.push_back("--benchmark_min_time=0.01");
    } else {
      translated.push_back(args[i]);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(translated.size());
  for (std::string& a : translated) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
