// google-benchmark microbenchmarks of the algorithm kernels on synthetic
// OS trees: scaling of the size-l algorithms with n and l, OS generation,
// prelim-l generation and ObjectRank iterations.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/os_backend.h"
#include "core/os_generator.h"
#include "core/size_l.h"
#include "datasets/dblp.h"
#include "util/rng.h"

namespace {

using namespace osum;

core::OsTree RandomTree(uint64_t seed, size_t n) {
  util::Rng rng(seed);
  core::OsTree os;
  os.AddRoot(0, 0, 0, rng.NextDouble() * 100);
  for (size_t i = 1; i < n; ++i) {
    size_t parent = rng.NextBernoulli(0.7) ? i - 1 - rng.NextU64(std::max<size_t>(1, i / 3))
                                           : rng.NextU64(i);
    os.AddChild(static_cast<core::OsNodeId>(parent), 0, 0,
                static_cast<rel::TupleId>(i), rng.NextDouble() * 100);
  }
  return os;
}

void BM_SizeLDp(benchmark::State& state) {
  core::OsTree os = RandomTree(1, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLDp(os, l));
  }
}
BENCHMARK(BM_SizeLDp)
    ->Args({100, 10})
    ->Args({1000, 10})
    ->Args({1000, 50})
    ->Args({10000, 10})
    ->Args({10000, 50});

void BM_SizeLBottomUp(benchmark::State& state) {
  core::OsTree os = RandomTree(2, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLBottomUp(os, l));
  }
}
BENCHMARK(BM_SizeLBottomUp)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({10000, 50})
    ->Args({100000, 50});

void BM_SizeLTopPath(benchmark::State& state) {
  core::OsTree os = RandomTree(3, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLTopPath(os, l));
  }
}
BENCHMARK(BM_SizeLTopPath)->Args({1000, 10})->Args({10000, 10})->Args({10000, 50});

void BM_SizeLTopPathMemo(benchmark::State& state) {
  core::OsTree os = RandomTree(3, static_cast<size_t>(state.range(0)));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::SizeLTopPathMemo(os, l));
  }
}
BENCHMARK(BM_SizeLTopPathMemo)
    ->Args({1000, 10})
    ->Args({10000, 10})
    ->Args({10000, 50})
    ->Args({100000, 50});

// Shared fixture for database-dependent benchmarks.
struct DblpFixture {
  datasets::Dblp d;
  gds::Gds gds;
  std::unique_ptr<core::DataGraphBackend> backend;

  DblpFixture() : d(datasets::BuildDblp()) {
    datasets::ApplyDblpScores(&d, 1, 0.85);
    gds = datasets::DblpAuthorGds(d);
    backend =
        std::make_unique<core::DataGraphBackend>(d.db, d.links, d.data_graph);
  }

  static DblpFixture& Get() {
    static DblpFixture fixture;
    return fixture;
  }
};

void BM_GenerateCompleteOs(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  rel::TupleId tds = static_cast<rel::TupleId>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GenerateCompleteOs(f.d.db, f.gds, f.backend.get(), tds));
  }
}
BENCHMARK(BM_GenerateCompleteOs)->Arg(0)->Arg(50)->Arg(500);

void BM_GeneratePrelimOs(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  rel::TupleId tds = static_cast<rel::TupleId>(state.range(0));
  size_t l = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::GeneratePrelimOs(f.d.db, f.gds, f.backend.get(), tds, l));
  }
}
BENCHMARK(BM_GeneratePrelimOs)->Args({0, 10})->Args({0, 50})->Args({50, 10});

void BM_ObjectRank(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  importance::AuthorityGraph ga = datasets::DblpGa1(f.d);
  importance::ObjectRankOptions options;
  options.max_iterations = static_cast<int>(state.range(0));
  options.epsilon = 0.0;  // force exactly max_iterations
  for (auto _ : state) {
    benchmark::DoNotOptimize(importance::ComputeObjectRank(
        f.d.db, f.d.links, f.d.data_graph, ga, options));
  }
}
BENCHMARK(BM_ObjectRank)->Arg(1)->Arg(10);

void BM_DataGraphBuild(benchmark::State& state) {
  DblpFixture& f = DblpFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::DataGraph::Build(f.d.db, f.d.links));
  }
}
BENCHMARK(BM_DataGraphBuild);

}  // namespace

// Custom main instead of BENCHMARK_MAIN: the repo-wide `--json <path>`
// flag (see bench::JsonReport in bench_common.h) maps onto
// google-benchmark's own JSON reporter so bench_micro baselines land in
// the same bench/baselines/ workflow as the table drivers.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  std::vector<std::string> translated;
  translated.reserve(args.size() + 1);
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--json" && i + 1 < args.size()) {
      translated.push_back("--benchmark_out=" + args[++i]);
      translated.push_back("--benchmark_out_format=json");
    } else if (args[i].rfind("--json=", 0) == 0) {
      translated.push_back("--benchmark_out=" + args[i].substr(7));
      translated.push_back("--benchmark_out_format=json");
    } else if (args[i] == "--tiny") {
      // Smoke mode: one fast iteration per benchmark.
      translated.push_back("--benchmark_min_time=0.01");
    } else {
      translated.push_back(args[i]);
    }
  }
  std::vector<char*> cargv;
  cargv.reserve(translated.size());
  for (std::string& a : translated) cargv.push_back(a.data());
  int cargc = static_cast<int>(cargv.size());
  benchmark::Initialize(&cargc, cargv.data());
  if (benchmark::ReportUnrecognizedArguments(cargc, cargv.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
