// Figure 10: efficiency of the size-l algorithms.
//
// (a)-(d) size-l computation time (excluding OS generation) for the
//         optimal DP and the two greedies, on complete and prelim-l OSs,
//         l = 5..50, for the four G_DSs of Figure 9. The "Optimal" series
//         is the paper's literal combination-enumeration DP; runs whose
//         step budget explodes are reported as ">cap" — the analog of the
//         paper stopping DP after 30 minutes. Our polynomial knapsack
//         realization of Algorithm 1 is reported alongside as
//         "DP-knapsack" (an improvement over the paper; same optimum).
// (e)     scalability with |OS| at fixed l=10 (author OSs of graded size).
// (f)     cost breakdown: OS generation (data-graph vs database back end)
//         vs size-l computation; prelim-l sizes and speedups.
//
// Paper reference points: DP unbearable on moderate-to-large OS/l;
// Bottom-Up consistently fastest and *faster* as l grows on the complete
// OS (fewer de-heap operations); prelim-l is always faster to generate
// (~2.5x) and speeds Bottom-Up by up to ~5.7x, Top-Path by up to ~4.1x;
// data-graph generation ~65x faster than database generation.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

using bench::LSweep;
using bench::MeanOsSize;
using bench::MedianSeconds;
using bench::PickLargestSubjects;
using bench::PickSubjectByOsSize;

constexpr uint64_t kEnumBudget = 8'000'000;  // ~0.1s; the ">30min" analog
// The enumeration DP hits the cap on virtually every large OS; measure it
// on a small sample so the bench stays minutes, not hours.
constexpr size_t kEnumSample = 3;

std::string Ms(double seconds) {
  return util::FormatDouble(seconds * 1e3, 2);
}

void RunTimingSubfigure(const std::string& title, const rel::Database& db,
                        const gds::Gds& gds, core::OsBackend* backend,
                        const std::vector<rel::TupleId>& subjects,
                        bench::JsonReport* json) {
  util::PrintHeading(
      std::cout,
      title + " (Aver|OS|=" +
          util::FormatDouble(MeanOsSize(db, gds, backend, subjects), 0) +
          ", times in ms)");
  util::TablePrinter table(
      {"l", "Optimal (Complete)", "Optimal (Prelim)", "DP-knapsack (Complete)",
       "Bottom-Up (Complete)", "Bottom-Up (Prelim)", "Top-Path (Complete)",
       "Top-Path (Prelim)"});

  for (size_t l : LSweep()) {
    // Pre-generate the OSs once; timings below exclude generation.
    std::vector<core::OsTree> completes, prelims;
    for (rel::TupleId t : subjects) {
      completes.push_back(core::GenerateCompleteOs(db, gds, backend, t));
      prelims.push_back(core::GeneratePrelimOs(db, gds, backend, t, l));
    }
    auto total_time = [&](auto&& fn) {
      return MedianSeconds([&] {
        for (size_t i = 0; i < completes.size(); ++i) fn(i);
      }, 3) / static_cast<double>(completes.size());
    };
    // Single-rep small-sample timing for the exponential enumeration DP.
    auto enum_time = [&](std::vector<core::OsTree>& trees, bool* aborted) {
      size_t sample = std::min(kEnumSample, trees.size());
      util::WallTimer timer;
      for (size_t i = 0; i < sample; ++i) {
        core::SizeLStats st;
        core::SizeLDpEnumerate(trees[i], l, kEnumBudget, &st);
        *aborted |= st.aborted;
      }
      return timer.ElapsedSeconds() / static_cast<double>(sample);
    };

    bool enum_aborted = false;
    double t_enum_c = enum_time(completes, &enum_aborted);
    bool enum_aborted_p = false;
    double t_enum_p = enum_time(prelims, &enum_aborted_p);
    double t_dp = total_time(
        [&](size_t i) { core::SizeLDp(completes[i], l); });
    double t_bu_c = total_time(
        [&](size_t i) { core::SizeLBottomUp(completes[i], l); });
    double t_bu_p = total_time(
        [&](size_t i) { core::SizeLBottomUp(prelims[i], l); });
    double t_tp_c = total_time(
        [&](size_t i) { core::SizeLTopPath(completes[i], l); });
    double t_tp_p = total_time(
        [&](size_t i) { core::SizeLTopPath(prelims[i], l); });

    table.AddRow({std::to_string(l),
                  enum_aborted ? ">" + Ms(t_enum_c) + " (cap)" : Ms(t_enum_c),
                  enum_aborted_p ? ">" + Ms(t_enum_p) + " (cap)"
                                 : Ms(t_enum_p),
                  Ms(t_dp), Ms(t_bu_c), Ms(t_bu_p), Ms(t_tp_c), Ms(t_tp_p)});
    std::string label = "l=" + std::to_string(l);
    json->Add(title, label, "dp_knapsack_complete_ms", t_dp * 1e3);
    json->Add(title, label, "bottom_up_complete_ms", t_bu_c * 1e3);
    json->Add(title, label, "bottom_up_prelim_ms", t_bu_p * 1e3);
    json->Add(title, label, "top_path_complete_ms", t_tp_c * 1e3);
    json->Add(title, label, "top_path_prelim_ms", t_tp_p * 1e3);
  }
  table.Print(std::cout);
}

}  // namespace
}  // namespace osum

int main(int argc, char** argv) {
  using namespace osum;
  bench::JsonReport json =
      bench::JsonReport::FromArgs(argc, argv, "bench_fig10_efficiency");
  std::cout << "Figure 10: efficiency (size-l computation cost, excluding "
               "OS generation unless stated)\n";

  datasets::Dblp d = datasets::BuildDblp();
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend dblp_backend(d.db, d.links, d.data_graph);
  gds::Gds author_gds = datasets::DblpAuthorGds(d);
  gds::Gds paper_gds = datasets::DblpPaperGds(d);

  datasets::Tpch t = datasets::BuildTpch();
  datasets::ApplyTpchScores(&t, 1, 0.85);
  core::DataGraphBackend tpch_backend(t.db, t.links, t.data_graph);
  gds::Gds customer_gds = datasets::TpchCustomerGds(t);
  gds::Gds supplier_gds = datasets::TpchSupplierGds(t);

  std::vector<rel::TupleId> authors =
      PickLargestSubjects(d.db, author_gds, &dblp_backend, 400, 3, 10);
  std::vector<rel::TupleId> papers =
      PickLargestSubjects(d.db, paper_gds, &dblp_backend, 400, 3, 10);
  std::vector<rel::TupleId> customers =
      PickLargestSubjects(t.db, customer_gds, &tpch_backend, 300, 5, 10);
  std::vector<rel::TupleId> suppliers =
      PickLargestSubjects(t.db, supplier_gds, &tpch_backend, 80, 2, 10);

  RunTimingSubfigure("Figure 10(a): DBLP Author", d.db, author_gds,
                     &dblp_backend, authors, &json);
  RunTimingSubfigure("Figure 10(b): DBLP Paper", d.db, paper_gds,
                     &dblp_backend, papers, &json);
  RunTimingSubfigure("Figure 10(c): TPC-H Customer", t.db, customer_gds,
                     &tpch_backend, customers, &json);
  RunTimingSubfigure("Figure 10(d): TPC-H Supplier", t.db, supplier_gds,
                     &tpch_backend, suppliers, &json);

  // ---- (e) scalability with |OS|, l = 10.
  {
    util::PrintHeading(std::cout,
                       "Figure 10(e): DBLP Author, size-10 OS vs |OS| "
                       "(times in ms)");
    util::TablePrinter table({"|OS|", "Optimal (Complete)", "DP-knapsack",
                              "Bottom-Up (Complete)", "Bottom-Up (Prelim)",
                              "Top-Path (Complete)", "Top-Path (Prelim)"});
    const size_t l = 10;
    for (size_t target : {67u, 202u, 606u, 922u, 1309u, 2500u}) {
      rel::TupleId tds =
          PickSubjectByOsSize(d.db, author_gds, &dblp_backend, 1500, target);
      core::OsTree complete =
          core::GenerateCompleteOs(d.db, author_gds, &dblp_backend, tds);
      core::OsTree prelim =
          core::GeneratePrelimOs(d.db, author_gds, &dblp_backend, tds, l);
      core::SizeLStats st;
      double t_enum = MedianSeconds(
          [&] { core::SizeLDpEnumerate(complete, l, kEnumBudget, &st); }, 1);
      double t_dp = MedianSeconds([&] { core::SizeLDp(complete, l); });
      double t_bu_c = MedianSeconds([&] { core::SizeLBottomUp(complete, l); });
      double t_bu_p = MedianSeconds([&] { core::SizeLBottomUp(prelim, l); });
      double t_tp_c =
          MedianSeconds([&] { core::SizeLTopPath(complete, l); });
      double t_tp_p =
          MedianSeconds([&] { core::SizeLTopPath(prelim, l); });
      table.AddRow({std::to_string(complete.size()),
                    st.aborted ? ">" + Ms(t_enum) + " (cap)" : Ms(t_enum),
                    Ms(t_dp), Ms(t_bu_c), Ms(t_bu_p), Ms(t_tp_c),
                    Ms(t_tp_p)});
      std::string label = "|OS|=" + std::to_string(complete.size());
      json.Add("Figure 10(e)", label, "dp_knapsack_ms", t_dp * 1e3);
      json.Add("Figure 10(e)", label, "bottom_up_complete_ms", t_bu_c * 1e3);
      json.Add("Figure 10(e)", label, "top_path_complete_ms", t_tp_c * 1e3);
    }
    table.Print(std::cout);
  }

  // ---- (f) cost breakdown on TPC-H Supplier: generation + computation.
  {
    util::PrintHeading(std::cout,
                       "Figure 10(f): TPC-H Supplier cost breakdown "
                       "(per-OS averages over 10 suppliers; times in ms)");
    // Generation costs.
    double gen_complete_graph = MedianSeconds([&] {
      for (rel::TupleId s : suppliers) {
        core::GenerateCompleteOs(t.db, supplier_gds, &tpch_backend, s);
      }
    }) / suppliers.size();
    core::DatabaseBackend db_backend(t.db, t.links);
    double gen_complete_db = MedianSeconds([&] {
      for (rel::TupleId s : suppliers) {
        core::GenerateCompleteOs(t.db, supplier_gds, &db_backend, s);
      }
    }, 1) / suppliers.size();

    util::TablePrinter table({"step", "complete OS", "prelim-10", "prelim-50"});
    double size_c = 0, size_p10 = 0, size_p50 = 0;
    double gen_p10 = 0, gen_p50 = 0;
    for (rel::TupleId s : suppliers) {
      size_c += static_cast<double>(
          core::GenerateCompleteOs(t.db, supplier_gds, &tpch_backend, s)
              .size());
      util::WallTimer timer;
      size_p10 += static_cast<double>(
          core::GeneratePrelimOs(t.db, supplier_gds, &tpch_backend, s, 10)
              .size());
      gen_p10 += timer.ElapsedSeconds();
      timer.Reset();
      size_p50 += static_cast<double>(
          core::GeneratePrelimOs(t.db, supplier_gds, &tpch_backend, s, 50)
              .size());
      gen_p50 += timer.ElapsedSeconds();
    }
    double n = static_cast<double>(suppliers.size());
    table.AddRow({"Aver |OS|", util::FormatDouble(size_c / n, 0),
                  util::FormatDouble(size_p10 / n, 0),
                  util::FormatDouble(size_p50 / n, 0)});
    table.AddRow({"generation (data-graph)", Ms(gen_complete_graph),
                  Ms(gen_p10 / n), Ms(gen_p50 / n)});
    table.AddRow({"generation (database)", Ms(gen_complete_db), "-", "-"});

    for (size_t l : {10u, 50u}) {
      std::vector<core::OsTree> completes, prelims;
      for (rel::TupleId s : suppliers) {
        completes.push_back(
            core::GenerateCompleteOs(t.db, supplier_gds, &tpch_backend, s));
        prelims.push_back(
            core::GeneratePrelimOs(t.db, supplier_gds, &tpch_backend, s, l));
      }
      auto avg_time = [&](std::vector<core::OsTree>& trees, auto&& algo) {
        return MedianSeconds([&] {
          for (auto& os : trees) algo(os);
        }) / n;
      };
      double bu_c = avg_time(completes,
                             [&](core::OsTree& os) { core::SizeLBottomUp(os, l); });
      double bu_p = avg_time(prelims,
                             [&](core::OsTree& os) { core::SizeLBottomUp(os, l); });
      double tp_c = avg_time(completes, [&](core::OsTree& os) {
        core::SizeLTopPath(os, l);
      });
      double tp_p = avg_time(prelims, [&](core::OsTree& os) {
        core::SizeLTopPath(os, l);
      });
      // Place the prelim timing under the matching prelim-l column.
      std::string bu_10 = l == 10 ? Ms(bu_p) : "-";
      std::string bu_50 = l == 50 ? Ms(bu_p) : "-";
      std::string tp_10 = l == 10 ? Ms(tp_p) : "-";
      std::string tp_50 = l == 50 ? Ms(tp_p) : "-";
      table.AddRow({"Bottom-Up size-" + std::to_string(l), Ms(bu_c), bu_10,
                    bu_50});
      table.AddRow({"Top-Path size-" + std::to_string(l), Ms(tp_c), tp_10,
                    tp_50});
    }
    table.Print(std::cout);
    double ratio = gen_complete_db / std::max(gen_complete_graph, 1e-9);
    std::printf("\nspeedups: data-graph generation is %.1fx faster than "
                "database generation.\n", ratio);
    json.Add("Figure 10(f)", "generation", "complete_graph_ms",
             gen_complete_graph * 1e3);
    json.Add("Figure 10(f)", "generation", "complete_db_ms",
             gen_complete_db * 1e3);
    json.Add("Figure 10(f)", "generation", "db_over_graph_ratio", ratio);
  }

  std::cout << "\npaper shape check: DP explodes with l and |OS|; greedies "
               "stay in milliseconds; prelim-l cheaper everywhere.\n";
  return json.Write() ? 0 : 1;
}
