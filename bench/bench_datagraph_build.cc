// Section 6.3 infrastructure costs: database generation, data-graph
// construction (time and size) and global ObjectRank/ValueRank runs.
//
// Paper reference points (at paper scale: DBLP 2.96M tuples, TPC-H 8.66M):
// data graphs take 17s / 128s to build and occupy 150MB / 500MB; "the size
// of the database does not impact the OS generation time, because
// hash-maps are used to look-up the required nodes". We report the same
// quantities at our default scale and at 4x to show the near-linear trend.
#include <iostream>

#include "bench_common.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace osum;
  std::cout << "Section 6.3: data-graph build cost and ranking cost\n";

  util::TablePrinter table({"database", "tuples", "graph nodes",
                            "graph edges", "build (ms)", "graph MB",
                            "ObjectRank (ms)", "iters"});

  for (double scale : {1.0, 4.0}) {
    {
      datasets::DblpConfig config;
      config.scale = scale;
      util::WallTimer timer;
      datasets::Dblp d = datasets::BuildDblp(config);
      // Isolate the graph build.
      util::WallTimer graph_timer;
      graph::DataGraph rebuilt = graph::DataGraph::Build(d.db, d.links);
      double graph_ms = graph_timer.ElapsedMillis();
      util::WallTimer rank_timer;
      auto result = datasets::ApplyDblpScores(&d, 1, 0.85);
      table.AddRow({"DBLP x" + util::FormatDouble(scale, 0),
                    std::to_string(d.db.TotalTuples()),
                    std::to_string(rebuilt.num_nodes()),
                    std::to_string(rebuilt.num_edges()),
                    util::FormatDouble(graph_ms, 1),
                    util::FormatDouble(
                        static_cast<double>(rebuilt.ApproxMemoryBytes()) /
                            (1024.0 * 1024.0),
                        1),
                    util::FormatDouble(rank_timer.ElapsedMillis(), 1),
                    std::to_string(result.iterations)});
    }
    {
      datasets::TpchConfig config;
      config.scale = scale;
      datasets::Tpch t = datasets::BuildTpch(config);
      util::WallTimer graph_timer;
      graph::DataGraph rebuilt = graph::DataGraph::Build(t.db, t.links);
      double graph_ms = graph_timer.ElapsedMillis();
      util::WallTimer rank_timer;
      auto result = datasets::ApplyTpchScores(&t, 1, 0.85);
      table.AddRow({"TPC-H x" + util::FormatDouble(scale, 0),
                    std::to_string(t.db.TotalTuples()),
                    std::to_string(rebuilt.num_nodes()),
                    std::to_string(rebuilt.num_edges()),
                    util::FormatDouble(graph_ms, 1),
                    util::FormatDouble(
                        static_cast<double>(rebuilt.ApproxMemoryBytes()) /
                            (1024.0 * 1024.0),
                        1),
                    util::FormatDouble(rank_timer.ElapsedMillis(), 1),
                    std::to_string(result.iterations)});
    }
  }
  table.Print(std::cout);

  // OS generation time is independent of database size (hash-map lookups):
  // compare per-OS generation cost at 1x vs 4x scale for same-size OSs.
  std::cout << "\nOS generation vs database size (same target |OS|):\n";
  util::TablePrinter gen({"scale", "|OS|", "generation (ms)"});
  for (double scale : {1.0, 4.0}) {
    datasets::DblpConfig config;
    config.scale = scale;
    datasets::Dblp d = datasets::BuildDblp(config);
    datasets::ApplyDblpScores(&d, 1, 0.85);
    core::DataGraphBackend backend(d.db, d.links, d.data_graph);
    gds::Gds gds = datasets::DblpAuthorGds(d);
    rel::TupleId tds = bench::PickSubjectByOsSize(d.db, gds, &backend,
                                                  400, 800);
    core::OsTree os = core::GenerateCompleteOs(d.db, gds, &backend, tds);
    double ms = bench::MedianSeconds([&] {
      core::GenerateCompleteOs(d.db, gds, &backend, tds);
    }, 5) * 1e3;
    gen.AddRow({util::FormatDouble(scale, 0), std::to_string(os.size()),
                util::FormatDouble(ms, 2)});
  }
  gen.Print(std::cout);
  return 0;
}
