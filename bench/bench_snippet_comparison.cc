// Section 6.1 "Comparative Evaluation": size-5 OSs vs Google-Desktop-style
// static snippets.
//
// The paper exported each OS as an HTML page, queried Google Desktop and
// counted how many of the snippet's tuples (up to three, taken from the
// beginning of the page, order random) belong to the evaluators' size-5
// OSs: "in all cases Google snippets found zero and exceptionally one
// tuple". This bench reproduces the comparison against the simulated
// evaluator panel, and adds our computed size-5 OS for contrast.
#include <iostream>

#include "bench_common.h"
#include "eval/snippet.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main() {
  using namespace osum;
  std::cout << "Section 6.1 comparative evaluation: static snippets vs "
               "size-5 OSs (tuples shared with the evaluators' size-5, "
               "root excluded, averaged over evaluators)\n";

  datasets::Dblp d = datasets::BuildDblp();
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend backend(d.db, d.links, d.data_graph);
  gds::Gds gds = datasets::DblpAuthorGds(d);
  eval::EvaluatorPanel panel(eval::DblpEvaluatorConfig(11));

  const size_t l = 5;
  std::vector<rel::TupleId> authors{0, 1, 2, 3, 5, 8, 13, 21, 34, 55, 89};

  util::TablePrinter table({"author", "|OS|", "snippet hits", "size-5 hits",
                            "snippet effectiveness %", "size-5 eff. %"});
  double snip_total = 0.0, ours_total = 0.0;
  for (rel::TupleId a : authors) {
    core::OsTree os = core::GenerateCompleteOs(d.db, gds, &backend, a);
    std::vector<double> ref = eval::NodeScores(os);
    core::Selection ours = core::SizeLDp(os, l);
    core::Selection snippet =
        eval::StaticSnippet(os, 3, /*shuffle_seed=*/a * 31 + 7);

    double snip_hits = 0.0, ours_hits = 0.0;
    for (size_t e = 0; e < panel.size(); ++e) {
      core::Selection ideal = panel.IdealSizeL(os, gds, ref, e, l);
      // Count shared *tuples* beyond the root (all selections keep it).
      snip_hits += static_cast<double>(eval::OverlapCount(snippet, ideal)) - 1;
      ours_hits += static_cast<double>(eval::OverlapCount(ours, ideal)) - 1;
    }
    snip_hits /= static_cast<double>(panel.size());
    ours_hits /= static_cast<double>(panel.size());
    snip_total += snip_hits;
    ours_total += ours_hits;
    table.AddRow({d.db.relation(d.author).StringValue(a, 0),
                  std::to_string(os.size()), util::FormatDouble(snip_hits, 2),
                  util::FormatDouble(ours_hits, 2),
                  util::FormatDouble(100.0 * snip_hits / (l - 1), 1),
                  util::FormatDouble(100.0 * ours_hits / (l - 1), 1)});
  }
  table.Print(std::cout);
  std::printf("\naverages: snippet %.2f tuples, size-5 OS %.2f tuples "
              "(paper: snippets found zero, exceptionally one)\n",
              snip_total / static_cast<double>(authors.size()),
              ours_total / static_cast<double>(authors.size()));
  return 0;
}
