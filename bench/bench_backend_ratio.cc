// DatabaseBackend vs DataGraphBackend OS-generation cost across OS sizes.
//
// Figure 10(f) claims data-graph generation is ~65x faster than generating
// the OS "direct from the DBMS"; bench_throughput implies this only via
// QPS. This driver measures the ratio itself: for DBLP-author subjects of
// graded complete-OS size, time GenerateCompleteOs (and prelim-10) on
//   - DataGraphBackend (adjacency lists in memory),
//   - DatabaseBackend with 0us simulated latency (pure access-path cost),
//   - DatabaseBackend with the paper-flavored 8us per SELECT,
// and report db/graph ratios per size. The Figure 10(f) shape is asserted,
// not just printed: every 8us ratio must exceed 1x (the database path is
// never cheaper) and must exceed 10x on the largest OS — exit 1 otherwise,
// so CI catches a regression that erases the gap. The 0us column is
// informational only: at microsecond scale its ratio is timer-noise-bound.
//
// Flags: --json <path> (bench::JsonReport rows), --tiny (CI smoke sizes).
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/os_backend.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

struct SizePoint {
  size_t os_size;       // actual complete-OS size of the picked subject
  rel::TupleId subject;
};

}  // namespace
}  // namespace osum

int main(int argc, char** argv) {
  using namespace osum;
  bench::JsonReport json =
      bench::JsonReport::FromArgs(argc, argv, "bench_backend_ratio");
  bool tiny = bench::TinyFromArgs(argc, argv);

  datasets::DblpConfig config;
  if (tiny) {
    config.num_authors = 120;
    config.num_papers = 480;
    config.num_conferences = 8;
  }
  datasets::Dblp d = datasets::BuildDblp(config);
  datasets::ApplyDblpScores(&d, 1, 0.85);
  gds::Gds author_gds = datasets::DblpAuthorGds(d);

  core::DataGraphBackend graph_backend(d.db, d.links, d.data_graph);
  core::DatabaseBackend db0_backend(d.db, d.links, /*per_select_micros=*/0.0);
  core::DatabaseBackend db8_backend(d.db, d.links, /*per_select_micros=*/8.0);

  std::vector<size_t> targets =
      tiny ? std::vector<size_t>{30, 120}
           : std::vector<size_t>{67, 202, 606, 1309, 2500};
  std::vector<SizePoint> points;
  for (size_t target : targets) {
    rel::TupleId tds = bench::PickSubjectByOsSize(
        d.db, author_gds, &graph_backend, tiny ? 120 : 1500, target);
    size_t size =
        core::GenerateCompleteOs(d.db, author_gds, &graph_backend, tds)
            .size();
    points.push_back({size, tds});
  }

  util::PrintHeading(
      std::cout,
      "complete-OS generation cost by back end (DBLP authors, times in ms)");
  util::TablePrinter table({"|OS|", "data-graph", "database 0us",
                            "database 8us", "ratio 0us", "ratio 8us"});
  bool all_above_one = true;
  double largest_ratio8 = 0.0;
  for (const SizePoint& p : points) {
    auto gen = [&](core::OsBackend* backend) {
      return bench::MedianSeconds([&] {
        core::GenerateCompleteOs(d.db, author_gds, backend, p.subject);
      }, 3);
    };
    double t_graph = gen(&graph_backend);
    double t_db0 = gen(&db0_backend);
    double t_db8 = gen(&db8_backend);
    double ratio0 = t_db0 / std::max(t_graph, 1e-9);
    double ratio8 = t_db8 / std::max(t_graph, 1e-9);
    all_above_one = all_above_one && ratio8 > 1.0;
    largest_ratio8 = ratio8;  // points are size-sorted; keep the last
    table.AddRow({std::to_string(p.os_size),
                  util::FormatDouble(t_graph * 1e3, 3),
                  util::FormatDouble(t_db0 * 1e3, 3),
                  util::FormatDouble(t_db8 * 1e3, 3),
                  util::FormatDouble(ratio0, 1) + "x",
                  util::FormatDouble(ratio8, 1) + "x"});
    std::string label = "|OS|=" + std::to_string(p.os_size);
    json.Add("complete_os", label, "graph_ms", t_graph * 1e3);
    json.Add("complete_os", label, "db0_ms", t_db0 * 1e3);
    json.Add("complete_os", label, "db8_ms", t_db8 * 1e3);
    json.Add("complete_os", label, "ratio_db0_over_graph", ratio0);
    json.Add("complete_os", label, "ratio_db8_over_graph", ratio8);
  }
  table.Print(std::cout);

  // Prelim-10 generation at the largest size: the cheaper generation the
  // paper recommends still pays the same per-SELECT amplification.
  {
    const SizePoint& p = points.back();
    auto gen_prelim = [&](core::OsBackend* backend) {
      return bench::MedianSeconds([&] {
        core::GeneratePrelimOs(d.db, author_gds, backend, p.subject, 10);
      }, 3);
    };
    double t_graph = gen_prelim(&graph_backend);
    double t_db8 = gen_prelim(&db8_backend);
    double ratio = t_db8 / std::max(t_graph, 1e-9);
    std::printf("\nprelim-10 at |OS|=%zu: data-graph %.3f ms, database(8us) "
                "%.3f ms, ratio %.1fx\n",
                p.os_size, t_graph * 1e3, t_db8 * 1e3, ratio);
    json.Add("prelim_10", "|OS|=" + std::to_string(p.os_size),
             "ratio_db8_over_graph", ratio);
  }

  std::printf("\npaper shape check (Figure 10(f)): database generation "
              "costlier at every size; the gap widens with |OS| and "
              "simulated latency.\n");
  if (!json.Write()) return 1;
  if (!all_above_one || largest_ratio8 < 10.0) {
    std::printf("FAIL: ratio trend violated (all>1x: %s, largest 8us ratio "
                "%.1fx, need >=10x)\n",
                all_above_one ? "yes" : "no", largest_ratio8);
    return 1;
  }
  std::printf("PASS: every ratio >1x; largest-OS 8us ratio %.1fx (>=10x)\n",
              largest_ratio8);
  return 0;
}
