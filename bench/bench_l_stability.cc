// Future-work analysis (Section 7): the space of optimal size-l OSs.
//
// The paper observes that "optimal size-l OSs for different l could be
// very different. This prevents the incremental computation of a size-l
// OS from the optimal size-(l-1) OS" and proposes analyzing that space.
// This bench does the analysis on both databases: for each OS it computes
// the optima for every l in [1, 50] from a single DP pass (SizeLDpAll)
// and reports (i) how often S_l ⊂ S_{l+1} (the incremental property), and
// (ii) the worst and mean survival ratio |S_l ∩ S_{l+1}| / l.
//
// Conclusion to look for: the incremental property holds for *most* but
// not all steps — confirming the paper's caveat while showing that
// caching/incremental maintenance would still pay off on average — and a
// single SizeLDpAll pass costs barely more than one SizeLDp run.
#include <iostream>

#include "bench_common.h"
#include "core/multi_l.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

void Analyze(const std::string& title, const rel::Database& db,
             const gds::Gds& gds, core::OsBackend* backend,
             const std::vector<rel::TupleId>& subjects) {
  util::PrintHeading(std::cout, title);
  util::TablePrinter table({"subject", "|OS|", "incremental steps %",
                            "mean survival %", "min survival %",
                            "all-l DP (ms)", "single DP (ms)"});
  double incr_sum = 0.0;
  for (rel::TupleId t : subjects) {
    core::OsTree os = core::GenerateCompleteOs(db, gds, backend, t);
    util::WallTimer timer;
    auto points = core::AnalyzeLStability(os, 50);
    double all_ms = timer.ElapsedMillis();
    timer.Reset();
    core::SizeLDp(os, 50);
    double single_ms = timer.ElapsedMillis();

    double mean_survival = 0.0, min_survival = 1.0;
    for (const auto& p : points) {
      mean_survival += p.overlap_ratio;
      min_survival = std::min(min_survival, p.overlap_ratio);
    }
    if (!points.empty()) {
      mean_survival /= static_cast<double>(points.size());
    }
    double incr = core::IncrementalFraction(points);
    incr_sum += incr;
    table.AddRow({std::to_string(t), std::to_string(os.size()),
                  util::FormatDouble(100.0 * incr, 1),
                  util::FormatDouble(100.0 * mean_survival, 1),
                  util::FormatDouble(100.0 * min_survival, 1),
                  util::FormatDouble(all_ms, 2),
                  util::FormatDouble(single_ms, 2)});
  }
  table.Print(std::cout);
  std::printf("average incremental fraction: %.1f%%\n",
              100.0 * incr_sum / static_cast<double>(subjects.size()));
}

}  // namespace
}  // namespace osum

int main() {
  using namespace osum;
  std::cout << "Section 7 analysis: stability of optimal size-l OSs "
               "across l (S_l vs S_{l+1}, l = 1..49)\n";

  datasets::Dblp d = datasets::BuildDblp();
  datasets::ApplyDblpScores(&d, 1, 0.85);
  core::DataGraphBackend dblp_backend(d.db, d.links, d.data_graph);
  gds::Gds author_gds = datasets::DblpAuthorGds(d);
  auto authors = bench::PickLargestSubjects(d.db, author_gds, &dblp_backend,
                                            400, 3, 8);
  Analyze("DBLP Author OSs", d.db, author_gds, &dblp_backend, authors);

  datasets::Tpch t = datasets::BuildTpch();
  datasets::ApplyTpchScores(&t, 1, 0.85);
  core::DataGraphBackend tpch_backend(t.db, t.links, t.data_graph);
  gds::Gds customer_gds = datasets::TpchCustomerGds(t);
  auto customers = bench::PickLargestSubjects(t.db, customer_gds,
                                              &tpch_backend, 300, 5, 8);
  Analyze("TPC-H Customer OSs", t.db, customer_gds, &tpch_backend,
          customers);
  return 0;
}
