// Serving-layer result cache: hot-hit speedup and skewed-workload QPS.
//
// The cache's economic claim (ISSUE 3 acceptance): on the simulated-latency
// DatabaseBackend — where OS generation is the ~65x-amplified cost of
// Figure 10(f) — answering a repeated query from serve::ResultCache must be
// >=10x faster than recomputing it. Two measurements:
//   1. cold vs hot: per distinct query, the first QueryService::Query
//      (miss: OS generation + size-l + insert) against the steady-state
//      repeat (hit: mutex + shared_ptr copy). The bench FAILS (exit 1) if
//      the mean speedup lands under 10x.
//   2. skewed traffic: a zipf-flavored mix (a few hot queries dominate,
//      the realistic shape of keyword workloads) replayed through the
//      service vs recomputed uncached; reports QPS, hit rate, and the
//      hit/miss latency split from serve::Metrics.
//   3. long-tail admission (ISSUE 5 acceptance): a Zipf replay over a
//      universe far larger than the byte budget, run twice at the SAME
//      budget — doorkeeper admission off vs on. One-hit-wonder tail keys
//      churn the LRU when everything is admitted; with the doorkeeper
//      they never spend budget bytes, so hot keys stay resident. The
//      bench FAILS (exit 1) unless admission-on beats admission-off on
//      hot-key hit rate. The replay is seeded and single-threaded, so
//      hit rates, evictions and admission rejects are exactly
//      reproducible (machine-independent baseline rows).
// Both back ends are swept so the table shows the cache matters most
// exactly where the paper says generation is most expensive.
//
// Flags: --json <path> (bench::JsonReport rows), --tiny (CI smoke sizes).
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "api/query.h"
#include "bench_common.h"
#include "core/os_backend.h"
#include "serve/query_service.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace osum {
namespace {

/// Distinct query mix: prolific-author surnames (large OSs) + title terms.
/// Surnames are drawn from a small name pool, so collisions are likely —
/// dedupe, or a repeated surname's "cold miss" would really be a cache hit.
std::vector<std::string> DblpMix(const datasets::Dblp& d, size_t surnames) {
  std::vector<std::string> mix;
  for (rel::TupleId t = 0; mix.size() < surnames &&
                           t < d.db.relation(d.author).num_tuples();
       ++t) {
    std::string name = d.db.relation(d.author).StringValue(t, 0);
    std::string surname = name.substr(name.rfind(' ') + 1);
    if (std::find(mix.begin(), mix.end(), surname) == mix.end()) {
      mix.push_back(std::move(surname));
    }
  }
  mix.insert(mix.end(), {"databases", "mining", "graphs", "clustering"});
  return mix;
}

/// Skewed replay schedule over `mix`: index 0 gets ~50% of the traffic,
/// index 1 ~25%, and so on — deterministic, no RNG needed.
std::vector<size_t> SkewedSchedule(size_t distinct, size_t total) {
  std::vector<size_t> schedule;
  schedule.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    size_t rank = 0;
    for (size_t step = i; step % 2 == 1 && rank + 1 < distinct; step /= 2) {
      ++rank;
    }
    schedule.push_back(rank);
  }
  return schedule;
}

double RunColdVsHot(const std::string& backend_name,
                    const search::SearchContext& ctx,
                    const std::vector<std::string>& mix,
                    const search::QueryOptions& options,
                    bench::JsonReport* json) {
  util::PrintHeading(std::cout, "cold miss vs hot hit, backend=" +
                                    backend_name + " (latencies in us)");
  serve::ServiceOptions so;
  so.num_threads = 1;  // latency bench: no pool noise
  serve::QueryService service(ctx, so);

  util::Summary miss_us, hit_us;
  for (const std::string& q : mix) {
    api::QueryRequest request = api::QueryRequest(q).WithOptions(options);
    util::WallTimer timer;
    service.Execute(request);
    miss_us.Add(timer.ElapsedMicros());
    // Steady-state hit: median of several repeats.
    double hot = bench::MedianSeconds([&] { service.Execute(request); },
                                      5) * 1e6;
    hit_us.Add(hot);
  }
  double speedup = miss_us.Mean() / std::max(hit_us.Mean(), 1e-3);
  util::TablePrinter table({"path", "mean us", "p50 us", "max us"});
  table.AddRow({"miss (recompute)", util::FormatDouble(miss_us.Mean(), 1),
                util::FormatDouble(miss_us.Median(), 1),
                util::FormatDouble(miss_us.Max(), 1)});
  table.AddRow({"hit (cached)", util::FormatDouble(hit_us.Mean(), 2),
                util::FormatDouble(hit_us.Median(), 2),
                util::FormatDouble(hit_us.Max(), 2)});
  table.Print(std::cout);
  std::printf("hot-hit speedup: %.1fx (mean miss / mean hit)\n\n", speedup);

  std::string section = "cold_vs_hot " + backend_name;
  json->Add(section, "miss", "mean_us", miss_us.Mean());
  json->Add(section, "miss", "p50_us", miss_us.Median());
  json->Add(section, "hit", "mean_us", hit_us.Mean());
  json->Add(section, "hit", "p50_us", hit_us.Median());
  json->Add(section, "speedup", "miss_over_hit", speedup);
  return speedup;
}

void RunSkewedWorkload(const std::string& backend_name,
                       const search::SearchContext& ctx,
                       const std::vector<std::string>& mix, size_t requests,
                       const search::QueryOptions& options,
                       bench::JsonReport* json) {
  util::PrintHeading(std::cout, "skewed replay (" + std::to_string(requests) +
                                    " requests, " +
                                    std::to_string(mix.size()) +
                                    " distinct), backend=" + backend_name);
  std::vector<size_t> schedule = SkewedSchedule(mix.size(), requests);
  std::vector<api::QueryRequest> mix_requests;
  mix_requests.reserve(mix.size());
  for (const std::string& q : mix) {
    mix_requests.push_back(api::QueryRequest(q).WithOptions(options));
  }

  // Uncached reference: every request recomputes.
  util::WallTimer uncached_timer;
  for (size_t qi : schedule) ctx.Execute(mix_requests[qi]);
  double uncached_s = uncached_timer.ElapsedSeconds();

  serve::ServiceOptions so;
  so.num_threads = 1;
  serve::QueryService service(ctx, so);
  util::WallTimer cached_timer;
  for (size_t qi : schedule) service.Execute(mix_requests[qi]);
  double cached_s = cached_timer.ElapsedSeconds();

  serve::Metrics m = service.metrics();
  double n = static_cast<double>(requests);
  double hit_rate =
      static_cast<double>(m.cache.hits) /
      std::max<double>(1.0, static_cast<double>(m.cache.hits +
                                                m.cache.misses));
  util::TablePrinter table({"path", "wall ms", "qps", "hit rate"});
  table.AddRow({"uncached", util::FormatDouble(uncached_s * 1e3, 1),
                util::FormatDouble(n / uncached_s, 0), "-"});
  table.AddRow({"served (cache)", util::FormatDouble(cached_s * 1e3, 1),
                util::FormatDouble(n / cached_s, 0),
                util::FormatDouble(hit_rate * 100.0, 1) + "%"});
  table.Print(std::cout);
  std::printf("replay speedup: %.1fx; latency p50/p99 us: hit %.1f/%.1f, "
              "miss %.1f/%.1f\n\n",
              uncached_s / std::max(cached_s, 1e-9),
              m.hit_latency_us.Percentile(50.0),
              m.hit_latency_us.Percentile(99.0),
              m.miss_latency_us.Percentile(50.0),
              m.miss_latency_us.Percentile(99.0));

  std::string section = "skewed_replay " + backend_name;
  json->Add(section, "uncached", "qps", n / uncached_s);
  json->Add(section, "served", "qps", n / cached_s);
  json->Add(section, "served", "hit_rate", hit_rate);
  json->Add(section, "served", "speedup_vs_uncached",
            uncached_s / std::max(cached_s, 1e-9));
  // hit p99 stays in the printed table only: a sub-microsecond percentile
  // jitters by multiples of itself run-to-run, so a baseline row would
  // flap any strict perf gate without measuring anything real.
}

/// One admission-off/on arm of the long-tail replay: `requests` Zipf
/// draws over `distinct` queries (rank r = hot keyword r%H with synopsis
/// size 12 + r/H, so every rank is a distinct cache key with real
/// results), served at the given byte budget. Returns the hot-key hit
/// rate (requests whose rank is in the hot set that were cache hits).
double RunLongTailArm(const search::SearchContext& ctx,
                      const std::vector<api::QueryRequest>& universe,
                      const std::vector<size_t>& schedule, size_t hot_count,
                      size_t max_bytes, bool admission_on,
                      const std::string& label, bench::JsonReport* json) {
  serve::ServiceOptions so;
  so.num_threads = 1;
  so.cache.num_shards = 1;  // one global LRU: the budget is the story
  so.cache.max_entries = 2 * universe.size();  // bytes are the binding cap
  so.cache.max_bytes = max_bytes;
  so.cache.policy.admission_enabled = admission_on;
  so.cache.policy.admission_window_micros = 3600ull * 1'000'000;
  serve::QueryService service(ctx, so);

  size_t hot_requests = 0, hot_hits = 0;
  util::WallTimer timer;
  for (size_t rank : schedule) {
    api::QueryResponse response = service.Execute(universe[rank]);
    if (rank < hot_count) {
      ++hot_requests;
      if (response.stats.cache_hit) ++hot_hits;
    }
  }
  double wall_s = timer.ElapsedSeconds();

  serve::Metrics m = service.metrics();
  double hot_hit_rate =
      static_cast<double>(hot_hits) / std::max<size_t>(hot_requests, 1);
  double hit_rate =
      static_cast<double>(m.cache.hits) /
      std::max<double>(1.0,
                       static_cast<double>(m.cache.hits + m.cache.misses));

  std::string section = "long_tail data-graph";
  json->Add(section, label, "hot_hit_rate", hot_hit_rate);
  json->Add(section, label, "hit_rate", hit_rate);
  json->Add(section, label, "evictions",
            static_cast<double>(m.cache.evictions));
  json->Add(section, label, "admission_rejects",
            static_cast<double>(m.cache.admission_rejects));
  json->Add(section, label, "qps",
            static_cast<double>(schedule.size()) / std::max(wall_s, 1e-9));

  util::TablePrinter table({"admission", "hot hit rate", "overall", "evict",
                            "rejects", "qps"});
  table.AddRow({admission_on ? "on" : "off",
                util::FormatDouble(hot_hit_rate * 100.0, 1) + "%",
                util::FormatDouble(hit_rate * 100.0, 1) + "%",
                std::to_string(m.cache.evictions),
                std::to_string(m.cache.admission_rejects),
                util::FormatDouble(
                    static_cast<double>(schedule.size()) / wall_s, 0)});
  table.Print(std::cout);
  return hot_hit_rate;
}

/// The long-tail admission experiment (see file comment, measurement 3).
/// Returns (admission_off, admission_on) hot-key hit rates.
std::pair<double, double> RunLongTail(const search::SearchContext& ctx,
                                      const std::vector<std::string>& mix,
                                      size_t distinct, size_t requests,
                                      const search::QueryOptions& options,
                                      bench::JsonReport* json) {
  // Rank r is a distinct (keyword, l) cache key: the hot set reuses the
  // base l, deeper ranks ask for ever-larger synopses of the same
  // keywords — real queries, real result bytes, unbounded universe.
  size_t hot_count = mix.size();
  std::vector<api::QueryRequest> universe;
  universe.reserve(distinct);
  for (size_t r = 0; r < distinct; ++r) {
    search::QueryOptions o = options;
    o.l = options.l + r / hot_count;
    universe.push_back(api::QueryRequest(mix[r % hot_count]).WithOptions(o));
  }

  // Byte budget: ~1.5x the hot set's own residency, so the hot set fits
  // comfortably — unless tail churn evicts it. Both arms use this budget.
  size_t hot_bytes = 0;
  for (size_t r = 0; r < hot_count; ++r) {
    api::QueryResponse response = ctx.Execute(universe[r]);
    hot_bytes += serve::ApproxResultBytes(response.result_list()) + 64;
  }
  size_t max_bytes = hot_bytes + hot_bytes / 2;

  // Seeded Zipf schedule: rank 0 dominates, the tail is mostly
  // one-hit wonders. Deterministic across machines (util::Rng).
  util::Rng rng(0xFA5CADE5);
  util::ZipfSampler zipf(distinct, 1.05);
  std::vector<size_t> schedule;
  schedule.reserve(requests);
  for (size_t i = 0; i < requests; ++i) {
    schedule.push_back(static_cast<size_t>(zipf.Sample(&rng)));
  }

  util::PrintHeading(
      std::cout, "long-tail admission replay (" + std::to_string(requests) +
                     " requests, " + std::to_string(distinct) +
                     " distinct, budget " + std::to_string(max_bytes) +
                     " bytes), backend=data-graph");
  double off = RunLongTailArm(ctx, universe, schedule, hot_count, max_bytes,
                              /*admission_on=*/false, "admission_off", json);
  double on = RunLongTailArm(ctx, universe, schedule, hot_count, max_bytes,
                             /*admission_on=*/true, "admission_on", json);
  std::printf("hot-key hit rate: %.1f%% (admission off) -> %.1f%% "
              "(admission on) at the same %zu-byte budget\n\n",
              off * 100.0, on * 100.0, max_bytes);
  return {off, on};
}

}  // namespace
}  // namespace osum

int main(int argc, char** argv) {
  using namespace osum;
  bench::JsonReport json =
      bench::JsonReport::FromArgs(argc, argv, "bench_cache");
  bool tiny = bench::TinyFromArgs(argc, argv);

  datasets::DblpConfig config;
  config.num_authors = tiny ? 100 : 500;
  config.num_papers = tiny ? 400 : 2000;
  config.num_conferences = tiny ? 8 : 15;
  datasets::Dblp d = datasets::BuildDblp(config);
  datasets::ApplyDblpScores(&d, 1, 0.85);

  core::DataGraphBackend graph_backend(d.db, d.links, d.data_graph);
  // The paper's "direct from the DBMS" path: 8us of simulated latency per
  // SELECT, the regime where caching pays ~65x-amplified dividends.
  core::DatabaseBackend db_backend(d.db, d.links, /*per_select_micros=*/8.0);

  std::vector<search::SearchContext::Subject> subjects;
  subjects.push_back({d.author, datasets::DblpAuthorGds(d)});
  subjects.push_back({d.paper, datasets::DblpPaperGds(d)});
  // One context per backend (a context freezes its backend pointer).
  search::SearchContext graph_ctx = search::SearchContext::Build(
      d.db, &graph_backend, {subjects.begin(), subjects.end()});
  search::SearchContext db_ctx =
      search::SearchContext::Build(d.db, &db_backend, std::move(subjects));

  std::vector<std::string> mix = DblpMix(d, tiny ? 6 : 16);
  search::QueryOptions options;
  options.l = 12;
  options.max_results = 4;

  // The data-graph numbers are informational; the >=10x gate below is on
  // the database backend, where the cache's savings are amplified.
  RunColdVsHot("data-graph", graph_ctx, mix, options, &json);
  RunSkewedWorkload("data-graph", graph_ctx, mix, tiny ? 64 : 512, options,
                    &json);
  double db_speedup =
      RunColdVsHot("database(8us)", db_ctx, mix, options, &json);
  RunSkewedWorkload("database(8us)", db_ctx, mix, tiny ? 64 : 512, options,
                    &json);
  auto [tail_off, tail_on] =
      RunLongTail(graph_ctx, mix, /*distinct=*/tiny ? 96 : 1024,
                  /*requests=*/tiny ? 512 : 4096, options, &json);

  if (!json.Write()) return 1;
  // The acceptance gate: cached hot hits must beat DatabaseBackend
  // recompute by >=10x (in practice it is thousands of x).
  if (db_speedup < 10.0) {
    std::printf("FAIL: hot-hit speedup on the database backend is %.1fx "
                "(< 10x required)\n", db_speedup);
    return 1;
  }
  std::printf("PASS: hot-hit speedup on the database backend is %.1fx "
              "(>= 10x required)\n", db_speedup);
  // The policy gate: at the same byte budget, doorkeeper admission must
  // keep hot keys more resident than admit-everything.
  if (tail_on <= tail_off) {
    std::printf("FAIL: long-tail hot-key hit rate with admission on "
                "(%.3f) does not beat admission off (%.3f)\n",
                tail_on, tail_off);
    return 1;
  }
  std::printf("PASS: long-tail hot-key hit rate %.3f (admission on) > "
              "%.3f (admission off)\n", tail_on, tail_off);
  return 0;
}
